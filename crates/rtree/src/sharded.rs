//! Spatial sharding: Hilbert-range partitioned snapshots and the mutable
//! sharded tree that refreshes them.
//!
//! One [`PackedRTree`] serves one core set well; scaling serving further
//! means splitting the point set into `k` spatially coherent shards so a
//! query whose aggregate MBR lies inside one region touches one small index
//! instead of one big one. The partitioner sorts the points by Hilbert key
//! ([`gnn_geom::hilbert`]) and cuts the key sequence into `k` near-even
//! ranges ([`gnn_geom::hilbert::balanced_cuts`]); each range is bulk-loaded
//! and frozen as an independent [`PackedRTree`]. Shard membership is a pure
//! function of a point's Hilbert key, so a mutable [`ShardedTree`] can route
//! inserts and deletes to the owning shard deterministically and refresh
//! each shard's snapshot independently ([`ShardedTree::refreeze_all`] reuses
//! the `Arc` of every untouched shard and runs the page-level copy-on-write
//! [`RTree::refreeze`] on the dirty ones).
//!
//! A [`ShardedSnapshot`] is the read side: the shard snapshots plus their
//! MBR directory. Cross-shard k-GNN (a best-first merge over shard mindist
//! bounds) lives in `gnn-core`, which owns the query algorithms; the
//! workspace-level `sharded_equivalence` suite pins the merged results
//! bit-identical to the unsharded reference.

use crate::node::{LeafEntry, PageRef};
use crate::packed::PackedRTree;
use crate::tree::RTree;
use crate::RTreeParams;
use gnn_geom::hilbert::{balanced_cuts, cut_range, HilbertMapper};
use gnn_geom::{Point, PointId, Rect};
use std::sync::Arc;

/// A read-only set of spatially partitioned [`PackedRTree`] shards plus
/// their MBR directory.
///
/// Built by [`RTree::freeze_sharded`], [`PackedRTree::partition`] or a
/// [`ShardedTree`] freeze; shared behind an `Arc` by serving engines. Shards
/// are held behind individual `Arc`s so an incremental refresh
/// ([`ShardedTree::refreeze_all`]) can republish a new snapshot that shares
/// every untouched shard with its predecessor.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    shards: Vec<Arc<PackedRTree>>,
    mbrs: Vec<Rect>,
    /// Refined routing directory: the MBRs of each shard's root-level
    /// branches (the whole root MBR when the root is a leaf). Hilbert-range
    /// regions of clustered data are jagged, so their single bounding box
    /// over-approximates badly (boxes of neighboring shards overlap); the
    /// root branches hug the actual point blobs, giving routers and the
    /// cross-shard merge a much tighter — still true — lower bound: every
    /// shard point lies in one of these rectangles.
    bounds: Vec<Vec<Rect>>,
    len: usize,
}

impl ShardedSnapshot {
    fn from_shards(shards: Vec<Arc<PackedRTree>>) -> Self {
        assert!(!shards.is_empty(), "a snapshot needs at least one shard");
        let mbrs: Vec<Rect> = shards.iter().map(|s| s.root_mbr()).collect();
        let len = shards.iter().map(|s| s.len()).sum();
        let bounds = shards
            .iter()
            .map(|shard| {
                if shard.is_empty() {
                    return Vec::new();
                }
                match shard.page(shard.root()) {
                    PageRef::Internal(v) => (0..v.len()).map(|i| v.mbr(i)).collect(),
                    PageRef::Leaf(_) => vec![shard.root_mbr()],
                }
            })
            .collect();
        ShardedSnapshot {
            shards,
            mbrs,
            bounds,
            len,
        }
    }

    /// Wraps one existing snapshot as a single-shard `ShardedSnapshot`
    /// **without rebuilding it** — queries against the wrapper perform the
    /// exact node accesses of the wrapped snapshot, which is what keeps an
    /// unsharded serving engine bit-identical (results *and* NA) to the
    /// sequential reference.
    pub fn single(snapshot: Arc<PackedRTree>) -> Self {
        Self::from_shards(vec![snapshot])
    }

    /// Number of shards (≥ 1).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[inline]
    pub fn shard(&self, s: usize) -> &Arc<PackedRTree> {
        &self.shards[s]
    }

    /// All shards, in partition order.
    #[inline]
    pub fn shards(&self) -> &[Arc<PackedRTree>] {
        &self.shards
    }

    /// The shard MBR directory: `directory()[s]` bounds every point of
    /// shard `s` (the empty rect for an empty shard).
    #[inline]
    pub fn directory(&self) -> &[Rect] {
        &self.mbrs
    }

    /// The refined routing directory of shard `s`: its root-level branch
    /// MBRs (empty for an empty shard). Every point of the shard lies in
    /// at least one of these rectangles, so the minimum of a per-rectangle
    /// lower bound over them is a true per-shard lower bound — and a much
    /// tighter one than the single shard MBR when the shard's Hilbert
    /// region is jagged. This is what routers and the cross-shard merge
    /// prune with.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[inline]
    pub fn shard_bounds(&self, s: usize) -> &[Rect] {
        &self.bounds[s]
    }

    /// Total points across all shards.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether every shard is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// MBR of the whole dataset (union over the shard directory).
    pub fn root_mbr(&self) -> Rect {
        let mut out = Rect::empty();
        for (s, mbr) in self.mbrs.iter().enumerate() {
            if !self.shards[s].is_empty() {
                out.expand_rect(mbr);
            }
        }
        out
    }

    /// Total pages across all shards.
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.node_count()).sum()
    }
}

impl RTree {
    /// Freezes this tree into `shards` spatially coherent read-only shards:
    /// the points are Hilbert-sorted, cut into near-even key ranges, and
    /// each range is STR-bulk-loaded and frozen independently. See
    /// [`ShardedTree`] for the mutable counterpart that keeps refreshing
    /// such snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn freeze_sharded(&self, shards: usize) -> ShardedSnapshot {
        ShardedTree::build(*self.params(), self.iter(), shards).freeze_all()
    }
}

impl PackedRTree {
    /// Re-partitions this snapshot's points into `shards` spatially
    /// coherent shards (see [`RTree::freeze_sharded`]; same canonical
    /// partition — both sort by (Hilbert key, id), so the two constructors
    /// produce structurally identical snapshots from the same point set).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn partition(&self, shards: usize) -> ShardedSnapshot {
        ShardedTree::build(*self.params(), self.iter(), shards).freeze_all()
    }
}

/// A mutable, spatially sharded R*-tree: `k` independent [`RTree`] shards
/// with deterministic Hilbert-key routing for inserts and deletes, plus
/// per-shard incremental snapshot refresh.
///
/// The shard boundaries are fixed at build time (Hilbert key ranges over
/// the build-time workspace); points inserted outside the workspace clamp
/// onto its boundary key-wise, so routing stays total and deterministic.
/// Because membership is a pure function of the point, a delete routes to
/// the exact shard its insert went to — no cross-shard search.
#[derive(Debug)]
pub struct ShardedTree {
    mapper: HilbertMapper,
    /// Hilbert-key range boundaries (`shard_count - 1` entries).
    cuts: Vec<u64>,
    shards: Vec<RTree>,
}

impl ShardedTree {
    /// Partitions `entries` into `shards` Hilbert ranges and bulk-loads one
    /// R*-tree per range. An empty entry set yields empty shards over a
    /// unit workspace.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build<I>(params: RTreeParams, entries: I, shards: usize) -> Self
    where
        I: IntoIterator<Item = LeafEntry>,
    {
        assert!(shards > 0, "need at least one shard");
        let mut entries: Vec<LeafEntry> = entries.into_iter().collect();
        let workspace = Rect::bounding(entries.iter().map(|e| e.point))
            .unwrap_or_else(|| Rect::from_corners(0.0, 0.0, 1.0, 1.0));
        let mapper = HilbertMapper::new(workspace);
        // Canonical order: (Hilbert key, id). The id tiebreak makes the
        // partition a pure function of the point *set*, independent of the
        // iteration order of whatever container supplied it.
        entries.sort_by_key(|e| (mapper.key(e.point), e.id.0));
        let keys: Vec<u64> = entries.iter().map(|e| mapper.key(e.point)).collect();
        let cuts = balanced_cuts(&keys, shards);
        let mut buckets: Vec<Vec<LeafEntry>> = (0..shards).map(|_| Vec::new()).collect();
        for (e, key) in entries.into_iter().zip(keys) {
            buckets[cut_range(&cuts, key)].push(e);
        }
        ShardedTree {
            mapper,
            cuts,
            shards: buckets
                .into_iter()
                .map(|b| RTree::bulk_load(params, b))
                .collect(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total points across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(RTree::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[inline]
    pub fn shard(&self, s: usize) -> &RTree {
        &self.shards[s]
    }

    /// The shard that owns `p` — a pure function of the point, stable for
    /// the lifetime of the sharded tree.
    #[inline]
    pub fn route(&self, p: Point) -> usize {
        cut_range(&self.cuts, self.mapper.key(p))
    }

    /// Inserts an entry into its owning shard; returns the shard index.
    pub fn insert(&mut self, entry: LeafEntry) -> usize {
        let s = self.route(entry.point);
        self.shards[s].insert(entry);
        s
    }

    /// Removes an entry from its owning shard. Returns whether it was
    /// present.
    pub fn remove(&mut self, id: PointId, point: Point) -> bool {
        let s = self.route(point);
        self.shards[s].remove(id, point)
    }

    /// Freezes every shard from scratch.
    pub fn freeze_all(&self) -> ShardedSnapshot {
        ShardedSnapshot::from_shards(self.shards.iter().map(|t| Arc::new(t.freeze())).collect())
    }

    /// Incrementally refreshes a previous snapshot of this sharded tree:
    /// untouched shards share their `Arc` with `prev` (zero copying), dirty
    /// shards rebuild through the page-level copy-on-write
    /// [`RTree::refreeze`]. Falls back to a full [`ShardedTree::freeze_all`]
    /// when `prev` has a different shard count (it cannot be a snapshot of
    /// this tree).
    pub fn refreeze_all(&self, prev: &ShardedSnapshot) -> ShardedSnapshot {
        if prev.shard_count() != self.shard_count() {
            return self.freeze_all();
        }
        ShardedSnapshot::from_shards(
            self.shards
                .iter()
                .zip(prev.shards())
                .map(|(tree, snap)| {
                    if snap.is_snapshot_of(tree) && tree.dirty_page_count(snap) == 0 {
                        Arc::clone(snap)
                    } else {
                        Arc::new(tree.refreeze(snap))
                    }
                })
                .collect(),
        )
    }

    /// Fraction of shard `s`'s pages dirtied since `prev` (1.0 when `prev`
    /// is not a snapshot of that shard). The refresh-policy signal.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or `prev` has a different shard count.
    pub fn dirty_fraction(&self, s: usize, prev: &ShardedSnapshot) -> f64 {
        assert_eq!(
            prev.shard_count(),
            self.shard_count(),
            "snapshot shard count mismatch"
        );
        let tree = &self.shards[s];
        tree.dirty_page_count(prev.shard(s)) as f64 / tree.node_count().max(1) as f64
    }

    /// The largest per-shard dirty fraction (see
    /// [`ShardedTree::dirty_fraction`]).
    pub fn max_dirty_fraction(&self, prev: &ShardedSnapshot) -> f64 {
        (0..self.shard_count())
            .map(|s| self.dirty_fraction(s, prev))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<LeafEntry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                LeafEntry::new(
                    PointId(i as u64),
                    Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0),
                )
            })
            .collect()
    }

    fn ids_sorted(snapshot: &ShardedSnapshot) -> Vec<u64> {
        let mut v: Vec<u64> = snapshot
            .shards()
            .iter()
            .flat_map(|s| s.iter().map(|e| e.id.0))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn partition_covers_every_point_exactly_once() {
        for shards in [1usize, 2, 4, 7] {
            let entries = random_entries(700, 3);
            let tree = RTree::bulk_load(RTreeParams::with_capacity(8), entries);
            let snap = tree.freeze_sharded(shards);
            assert_eq!(snap.shard_count(), shards);
            assert_eq!(snap.len(), 700);
            assert_eq!(ids_sorted(&snap), (0..700u64).collect::<Vec<_>>());
            assert_eq!(snap.directory().len(), shards);
            for s in 0..shards {
                let shard = snap.shard(s);
                assert!(shard
                    .iter()
                    .all(|e| snap.directory()[s].contains_point(e.point)));
            }
        }
    }

    #[test]
    fn partition_and_freeze_sharded_are_the_same_partition() {
        let entries = random_entries(500, 9);
        let tree = RTree::bulk_load(RTreeParams::with_capacity(8), entries);
        let packed = tree.freeze();
        let a = tree.freeze_sharded(4);
        let b = packed.partition(4);
        assert_eq!(a.shard_count(), b.shard_count());
        for s in 0..4 {
            assert_eq!(a.shard(s).as_ref(), b.shard(s).as_ref(), "shard {s}");
        }
        assert_eq!(a.directory(), b.directory());
    }

    #[test]
    fn shard_bounds_cover_every_shard_point() {
        let entries = random_entries(3000, 21);
        let tree = RTree::bulk_load(RTreeParams::with_capacity(8), entries);
        let snap = tree.freeze_sharded(4);
        for s in 0..4 {
            let bounds = snap.shard_bounds(s);
            assert!(!bounds.is_empty());
            for e in snap.shard(s).iter() {
                assert!(
                    bounds.iter().any(|r| r.contains_point(e.point)),
                    "shard {s}: {:?} escapes the routing directory",
                    e.id
                );
            }
            // The refined directory is contained in the shard MBR.
            for r in bounds {
                assert!(snap.directory()[s].contains_rect(r), "shard {s}");
            }
        }
        // Empty shards expose an empty bounds list.
        let empty = RTree::new(RTreeParams::default()).freeze_sharded(2);
        assert!(empty.shard_bounds(0).is_empty());
    }

    #[test]
    fn shards_are_spatially_coherent() {
        // Hilbert-range shards of uniform data should have near-disjoint
        // MBRs: total shard area well below shard_count × workspace area.
        let entries = random_entries(4000, 5);
        let tree = RTree::bulk_load(RTreeParams::default(), entries);
        let snap = tree.freeze_sharded(8);
        let workspace_area = tree.root_mbr().area();
        let total: f64 = snap.directory().iter().map(Rect::area).sum();
        assert!(
            total < 3.0 * workspace_area,
            "shards overlap too much: {total} vs workspace {workspace_area}"
        );
    }

    #[test]
    fn single_wraps_without_rebuilding() {
        let entries = random_entries(300, 7);
        let tree = RTree::bulk_load(RTreeParams::with_capacity(8), entries);
        let packed = Arc::new(tree.freeze());
        let snap = ShardedSnapshot::single(Arc::clone(&packed));
        assert_eq!(snap.shard_count(), 1);
        assert!(Arc::ptr_eq(snap.shard(0), &packed));
        assert_eq!(snap.root_mbr(), packed.root_mbr());
        assert_eq!(snap.len(), packed.len());
    }

    #[test]
    fn routing_is_consistent_with_build_partition() {
        let entries = random_entries(900, 11);
        let st = ShardedTree::build(RTreeParams::with_capacity(8), entries.clone(), 5);
        for e in &entries {
            let s = st.route(e.point);
            assert!(
                st.shard(s).iter().any(|x| x.id == e.id),
                "entry {:?} not in its routed shard {s}",
                e.id
            );
        }
    }

    #[test]
    fn insert_delete_roundtrip_through_routing() {
        let entries = random_entries(600, 13);
        let mut st = ShardedTree::build(RTreeParams::with_capacity(8), entries.clone(), 4);
        assert_eq!(st.len(), 600);
        // Delete half, insert new ones (some outside the workspace).
        for e in &entries[..300] {
            assert!(st.remove(e.id, e.point), "{:?}", e.id);
        }
        assert!(!st.remove(PointId(0), entries[0].point), "double delete");
        for i in 0..50u64 {
            st.insert(LeafEntry::new(
                PointId(10_000 + i),
                Point::new(150.0 + i as f64, -20.0),
            ));
        }
        assert_eq!(st.len(), 350);
        // Out-of-workspace points still delete through routing.
        assert!(st.remove(PointId(10_000), Point::new(150.0, -20.0)));
        assert_eq!(st.len(), 349);
    }

    #[test]
    fn refreeze_all_reuses_clean_shards_and_matches_full_freeze() {
        let entries = random_entries(2000, 17);
        let mut st = ShardedTree::build(RTreeParams::with_capacity(8), entries.clone(), 4);
        let prev = st.freeze_all();
        // Touch only the shard owning entries[0].
        let touched = st.route(entries[0].point);
        assert!(st.remove(entries[0].id, entries[0].point));
        assert!(st.max_dirty_fraction(&prev) > 0.0);
        let next = st.refreeze_all(&prev);
        let full = st.freeze_all();
        for s in 0..4 {
            assert_eq!(next.shard(s).as_ref(), full.shard(s).as_ref(), "shard {s}");
            if s != touched {
                assert!(
                    Arc::ptr_eq(next.shard(s), prev.shard(s)),
                    "clean shard {s} must share its Arc"
                );
                assert_eq!(st.dirty_fraction(s, &prev), 0.0);
            } else {
                assert!(!Arc::ptr_eq(next.shard(s), prev.shard(s)));
            }
        }
        assert_eq!(next.len(), 1999);
    }

    #[test]
    fn refreeze_all_with_mismatched_shard_count_falls_back() {
        let entries = random_entries(400, 19);
        let st = ShardedTree::build(RTreeParams::with_capacity(8), entries.clone(), 3);
        let foreign = ShardedTree::build(RTreeParams::with_capacity(8), entries, 2).freeze_all();
        let next = st.refreeze_all(&foreign);
        assert_eq!(next.shard_count(), 3);
        assert_eq!(next.len(), 400);
    }

    #[test]
    fn empty_build_yields_empty_shards() {
        let st = ShardedTree::build(RTreeParams::default(), Vec::new(), 3);
        assert!(st.is_empty());
        let snap = st.freeze_all();
        assert_eq!(snap.shard_count(), 3);
        assert!(snap.is_empty());
        assert!(snap.root_mbr().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedTree::build(RTreeParams::default(), Vec::new(), 0);
    }
}
