//! The R*-tree topological split \[BKSS90\].
//!
//! `ChooseSplitAxis` picks the axis with the minimum total margin over all
//! legal distributions (considering both the lower- and upper-coordinate
//! sorts); `ChooseSplitIndex` then picks the distribution with minimum
//! overlap between the two group MBRs, breaking ties by minimum combined
//! area.

use crate::node::HasMbr;
use crate::RTreeParams;
use gnn_geom::Rect;

/// Splits an overflowing entry list into two groups per the R* algorithm.
///
/// `entries.len()` must be `max_entries + 1`; both returned groups satisfy
/// the `min_entries` bound.
pub(crate) fn rstar_split<E: HasMbr + Clone>(
    params: &RTreeParams,
    mut entries: Vec<E>,
) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() > params.max_entries);
    let m = params.min_entries;
    let total = entries.len();
    debug_assert!(total >= 2 * m, "cannot split {total} entries with min {m}");

    // --- ChooseSplitAxis: evaluate margin sums for both axes and sorts. ---
    let mut best_axis = Axis::X;
    let mut best_margin = f64::INFINITY;
    for axis in [Axis::X, Axis::Y] {
        for sort in [SortBy::Lower, SortBy::Upper] {
            sort_entries(&mut entries, axis, sort);
            let margin: f64 = distributions(total, m)
                .map(|split_at| {
                    let (l, r) = group_mbrs(&entries, split_at);
                    l.margin() + r.margin()
                })
                .sum();
            if margin < best_margin {
                best_margin = margin;
                best_axis = axis;
            }
        }
    }

    // --- ChooseSplitIndex on the winning axis. ---
    let mut best: Option<(SortBy, usize, f64, f64)> = None; // (sort, idx, overlap, area)
    for sort in [SortBy::Lower, SortBy::Upper] {
        sort_entries(&mut entries, best_axis, sort);
        for split_at in distributions(total, m) {
            let (l, r) = group_mbrs(&entries, split_at);
            let overlap = l.overlap_area(&r);
            let area = l.area() + r.area();
            let better = match best {
                None => true,
                Some((_, _, bo, ba)) => overlap < bo || (overlap == bo && area < ba),
            };
            if better {
                best = Some((sort, split_at, overlap, area));
            }
        }
    }
    let (sort, split_at, _, _) = best.expect("at least one distribution exists");
    sort_entries(&mut entries, best_axis, sort);
    let right = entries.split_off(split_at);
    (entries, right)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SortBy {
    Lower,
    Upper,
}

fn sort_entries<E: HasMbr>(entries: &mut [E], axis: Axis, sort: SortBy) {
    entries.sort_by(|a, b| {
        let (ka, kb) = match (axis, sort) {
            (Axis::X, SortBy::Lower) => (a.entry_mbr().lo.x, b.entry_mbr().lo.x),
            (Axis::X, SortBy::Upper) => (a.entry_mbr().hi.x, b.entry_mbr().hi.x),
            (Axis::Y, SortBy::Lower) => (a.entry_mbr().lo.y, b.entry_mbr().lo.y),
            (Axis::Y, SortBy::Upper) => (a.entry_mbr().hi.y, b.entry_mbr().hi.y),
        };
        ka.total_cmp(&kb)
    });
}

/// The legal split positions: the first group takes `m-1+k` entries for
/// `k = 1 ..= total - 2m + 2`... expressed directly as `m ..= total - m`.
fn distributions(total: usize, m: usize) -> impl Iterator<Item = usize> {
    m..=(total - m)
}

fn group_mbrs<E: HasMbr>(entries: &[E], split_at: usize) -> (Rect, Rect) {
    let mut left = Rect::empty();
    for e in &entries[..split_at] {
        left.expand_rect(&e.entry_mbr());
    }
    let mut right = Rect::empty();
    for e in &entries[split_at..] {
        right.expand_rect(&e.entry_mbr());
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafEntry;
    use gnn_geom::{Point, PointId};

    fn params4() -> RTreeParams {
        RTreeParams {
            max_entries: 4,
            min_entries: 2,
            reinsert_count: 0,
        }
    }

    fn entries(points: &[(f64, f64)]) -> Vec<LeafEntry> {
        points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| LeafEntry::new(PointId(i as u64), Point::new(x, y)))
            .collect()
    }

    #[test]
    fn split_separates_two_obvious_clusters() {
        // Two clusters far apart on x; the split must not mix them.
        let es = entries(&[
            (0.0, 0.0),
            (0.1, 0.1),
            (10.0, 0.0),
            (10.1, 0.1),
            (0.05, 0.05),
        ]);
        let (l, r) = rstar_split(&params4(), es);
        let (small, large): (Vec<_>, Vec<_>) = (l, r);
        let lx: Vec<f64> = small.iter().map(|e| e.point.x).collect();
        let rx: Vec<f64> = large.iter().map(|e| e.point.x).collect();
        let left_is_near_zero = lx.iter().all(|&x| x < 1.0);
        let right_is_near_ten = rx.iter().all(|&x| x > 9.0);
        let flipped = lx.iter().all(|&x| x > 9.0) && rx.iter().all(|&x| x < 1.0);
        assert!(
            (left_is_near_zero && right_is_near_ten) || flipped,
            "clusters were mixed: {lx:?} vs {rx:?}"
        );
    }

    #[test]
    fn split_respects_min_entries() {
        let es = entries(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]);
        let (l, r) = rstar_split(&params4(), es);
        assert!(l.len() >= 2 && r.len() >= 2);
        assert_eq!(l.len() + r.len(), 5);
    }

    #[test]
    fn split_handles_duplicate_points() {
        let es = entries(&[(1.0, 1.0); 5]);
        let (l, r) = rstar_split(&params4(), es);
        assert_eq!(l.len() + r.len(), 5);
        assert!(l.len() >= 2 && r.len() >= 2);
    }

    #[test]
    fn split_prefers_y_axis_when_spread_is_vertical() {
        let es = entries(&[
            (0.0, 0.0),
            (0.1, 10.0),
            (0.05, 20.0),
            (0.02, 30.0),
            (0.07, 40.0),
        ]);
        let (l, r) = rstar_split(&params4(), es);
        // Groups must be contiguous in y.
        let max_l = l.iter().map(|e| e.point.y).fold(f64::MIN, f64::max);
        let min_r = r.iter().map(|e| e.point.y).fold(f64::MAX, f64::min);
        let max_r = r.iter().map(|e| e.point.y).fold(f64::MIN, f64::max);
        let min_l = l.iter().map(|e| e.point.y).fold(f64::MAX, f64::min);
        assert!(max_l <= min_r || max_r <= min_l);
    }
}
