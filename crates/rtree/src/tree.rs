//! The R*-tree proper: arena storage, insertion with forced reinsert,
//! deletion with tree condensation.

use crate::node::{AnyEntry, Branch, LeafEntry, Node, PageId};
use crate::split::rstar_split;
use crate::RTreeParams;
use gnn_geom::{Point, PointId, Rect};
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of unique tree identity tokens (see [`RTree::refreeze`]): a
/// snapshot is only incrementally reusable against the exact tree instance
/// it was frozen from, because per-page versions are meaningful only within
/// one instance's mutation history.
static NEXT_TREE_ID: AtomicU64 = AtomicU64::new(1);

fn next_tree_id() -> u64 {
    NEXT_TREE_ID.fetch_add(1, Ordering::Relaxed)
}

/// A paged R*-tree over 2-D points \[BKSS90\].
///
/// Nodes live in an in-memory page arena; a [`crate::TreeCursor`] layered on
/// top simulates the disk by counting page reads (optionally through an LRU
/// buffer pool), which is how the paper's *node access* (NA) metric is
/// produced.
///
/// The tree supports one-by-one insertion (R\* `ChooseSubtree`, forced
/// reinsertion and topological split), deletion with condensation, and two
/// bulk-loading strategies (see [`RTree::bulk_load`] and
/// [`RTree::bulk_load_hilbert`]).
#[derive(Debug)]
pub struct RTree {
    params: RTreeParams,
    /// Page arena. `None` marks slots recycled through `free`.
    nodes: Vec<Option<Node>>,
    free: Vec<PageId>,
    root: PageId,
    /// Number of levels; 1 means the root is a leaf. Leaves are level 0.
    height: usize,
    len: usize,
    /// Mutation clock: bumped once per mutating operation. Snapshots record
    /// the clock at freeze time, which is what lets [`RTree::refreeze`] tell
    /// clean pages from dirty ones without a stop-the-world scan.
    version: u64,
    /// `page_version[i]` = value of `version` when arena slot `i` last
    /// changed content (allocation, mutation, or deallocation). Parallel to
    /// `nodes`.
    page_version: Vec<u64>,
    /// Identity token tying snapshots to this tree instance (see
    /// [`NEXT_TREE_ID`]).
    tree_id: u64,
}

impl Clone for RTree {
    /// Cloning copies the whole structure but assigns a **fresh identity
    /// token**: snapshots frozen from the original are not incrementally
    /// reusable by the clone (its [`RTree::refreeze`] falls back to a full
    /// freeze), because after the clone the two trees mutate independently
    /// and each tracks only its own history.
    fn clone(&self) -> Self {
        RTree {
            params: self.params,
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            root: self.root,
            height: self.height,
            len: self.len,
            version: self.version,
            page_version: self.page_version.clone(),
            tree_id: next_tree_id(),
        }
    }
}

/// What an insertion step reports to its caller level.
enum InsertOutcome {
    /// Entry placed; ancestors only need MBR refreshes.
    Done,
    /// The child split; the caller must add this branch (and may overflow).
    Split(Branch),
    /// Forced reinsertion was triggered at `level`; the listed entries must
    /// be re-inserted from the top once the recursion unwinds.
    Reinsert(usize, Vec<AnyEntry>),
}

impl RTree {
    /// Creates an empty tree.
    pub fn new(params: RTreeParams) -> Self {
        params.validate();
        RTree {
            params,
            nodes: vec![Some(Node::Leaf(Vec::new()))],
            free: Vec::new(),
            root: PageId(0),
            height: 1,
            len: 0,
            version: 0,
            page_version: vec![0],
            tree_id: next_tree_id(),
        }
    }

    /// Assembles a tree from pre-built pages (used by the bulk loaders).
    pub(crate) fn from_raw(
        params: RTreeParams,
        nodes: Vec<Option<Node>>,
        root: PageId,
        height: usize,
        len: usize,
    ) -> Self {
        let page_version = vec![0; nodes.len()];
        RTree {
            params,
            nodes,
            free: Vec::new(),
            root,
            height,
            len,
            version: 0,
            page_version,
            tree_id: next_tree_id(),
        }
    }

    /// The tree parameters.
    #[inline]
    pub fn params(&self) -> &RTreeParams {
        &self.params
    }

    /// Number of data points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 = the root is a leaf).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Root page id.
    #[inline]
    pub fn root(&self) -> PageId {
        self.root
    }

    /// MBR of the whole dataset ([`Rect::empty`] when empty).
    pub fn root_mbr(&self) -> Rect {
        self.node(self.root).mbr()
    }

    /// Number of live pages (the tree size in nodes, hence in simulated
    /// disk pages).
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Borrow a page.
    ///
    /// # Panics
    ///
    /// Panics if `id` refers to a freed page.
    #[inline]
    pub fn node(&self, id: PageId) -> &Node {
        self.nodes[id.index()].as_ref().expect("dangling page id")
    }

    /// Marks an arena slot as changed at the current mutation clock.
    #[inline]
    fn touch(&mut self, id: PageId) {
        self.page_version[id.index()] = self.version;
    }

    #[inline]
    fn node_mut(&mut self, id: PageId) -> &mut Node {
        // Every mutation goes through here (or through alloc/dealloc/
        // split_node, which touch explicitly), so the dirty tracking cannot
        // miss a page. Conservative: a refreshed-but-identical MBR still
        // dirties the page.
        self.page_version[id.index()] = self.version;
        self.nodes[id.index()].as_mut().expect("dangling page id")
    }

    fn alloc(&mut self, node: Node) -> PageId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = Some(node);
            self.touch(id);
            id
        } else {
            let id = PageId(u32::try_from(self.nodes.len()).expect("page arena overflow"));
            self.nodes.push(Some(node));
            self.page_version.push(self.version);
            id
        }
    }

    fn dealloc(&mut self, id: PageId) {
        self.nodes[id.index()] = None;
        self.touch(id);
        self.free.push(id);
    }

    /// Inserts a data point (R\* insertion with forced reinsertion).
    pub fn insert(&mut self, entry: LeafEntry) {
        debug_assert!(entry.point.is_finite(), "non-finite point inserted");
        self.version += 1;
        let mut reinserted = vec![false; self.height];
        self.insert_any(AnyEntry::Leaf(entry), 0, &mut reinserted);
        self.len += 1;
    }

    /// Inserts an entry whose destination node sits at `target_level`
    /// (0 = leaf). Branches carry subtrees during reinsertion/condensation.
    fn insert_any(&mut self, entry: AnyEntry, target_level: usize, reinserted: &mut Vec<bool>) {
        let root = self.root;
        let root_level = self.height - 1;
        debug_assert!(target_level <= root_level);
        match self.insert_rec(root, root_level, entry, target_level, reinserted) {
            InsertOutcome::Done => {}
            InsertOutcome::Split(new_sibling) => {
                let old_root = Branch {
                    mbr: self.node(self.root).mbr(),
                    child: self.root,
                };
                let new_root = self.alloc(Node::Internal(vec![old_root, new_sibling]));
                self.root = new_root;
                self.height += 1;
                reinserted.push(false);
            }
            InsertOutcome::Reinsert(level, entries) => {
                for e in entries {
                    self.insert_any(e, level, reinserted);
                }
            }
        }
    }

    fn insert_rec(
        &mut self,
        node_id: PageId,
        level: usize,
        entry: AnyEntry,
        target_level: usize,
        reinserted: &mut Vec<bool>,
    ) -> InsertOutcome {
        if level == target_level {
            match (self.node_mut(node_id), entry) {
                (Node::Leaf(es), AnyEntry::Leaf(e)) => es.push(e),
                (Node::Internal(bs), AnyEntry::Branch(b)) => bs.push(b),
                _ => unreachable!("entry kind does not match node kind at level {level}"),
            }
            if self.node(node_id).len() > self.params.max_entries {
                self.overflow_treatment(node_id, level, reinserted)
            } else {
                InsertOutcome::Done
            }
        } else {
            let child_idx = self.choose_subtree(node_id, entry.mbr(), level);
            let child_id = self.node(node_id).branches()[child_idx].child;
            let outcome = self.insert_rec(child_id, level - 1, entry, target_level, reinserted);
            // The child's extent may have changed in every case: refresh.
            let child_mbr = self.node(child_id).mbr();
            match self.node_mut(node_id) {
                Node::Internal(bs) => bs[child_idx].mbr = child_mbr,
                Node::Leaf(_) => unreachable!(),
            }
            match outcome {
                InsertOutcome::Done => InsertOutcome::Done,
                InsertOutcome::Reinsert(l, es) => InsertOutcome::Reinsert(l, es),
                InsertOutcome::Split(new_branch) => {
                    match self.node_mut(node_id) {
                        Node::Internal(bs) => bs.push(new_branch),
                        Node::Leaf(_) => unreachable!(),
                    }
                    if self.node(node_id).len() > self.params.max_entries {
                        self.overflow_treatment(node_id, level, reinserted)
                    } else {
                        InsertOutcome::Done
                    }
                }
            }
        }
    }

    /// R\* `ChooseSubtree`: overlap-enlargement criterion when the children
    /// are leaves, area-enlargement criterion otherwise.
    fn choose_subtree(&self, node_id: PageId, mbr: Rect, level: usize) -> usize {
        let branches = self.node(node_id).branches();
        debug_assert!(!branches.is_empty());
        let children_are_leaves = level == 1;
        if children_are_leaves {
            // Minimise overlap enlargement; resolve ties by area enlargement,
            // then by area.
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, b) in branches.iter().enumerate() {
                let enlarged = b.mbr.union(&mbr);
                let mut overlap_before = 0.0;
                let mut overlap_after = 0.0;
                for (j, other) in branches.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_before += b.mbr.overlap_area(&other.mbr);
                    overlap_after += enlarged.overlap_area(&other.mbr);
                }
                let key = (
                    overlap_after - overlap_before,
                    enlarged.area() - b.mbr.area(),
                    b.mbr.area(),
                );
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, b) in branches.iter().enumerate() {
                let key = (b.mbr.enlargement(&mbr), b.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    /// R\* overflow treatment: forced reinsertion on the first overflow of a
    /// level (never at the root), split otherwise.
    fn overflow_treatment(
        &mut self,
        node_id: PageId,
        level: usize,
        reinserted: &mut [bool],
    ) -> InsertOutcome {
        let root_level = self.height - 1;
        if level < root_level && !reinserted[level] && self.params.reinsert_count > 0 {
            reinserted[level] = true;
            let victims = self.extract_reinsert_victims(node_id);
            InsertOutcome::Reinsert(level, victims)
        } else {
            InsertOutcome::Split(self.split_node(node_id))
        }
    }

    /// Removes the `reinsert_count` entries whose centers lie farthest from
    /// the node's MBR center, returning them sorted by ascending distance
    /// (the R\* "close reinsert" order).
    fn extract_reinsert_victims(&mut self, node_id: PageId) -> Vec<AnyEntry> {
        let p = self.params.reinsert_count;
        let center = self.node(node_id).mbr().center();
        let sort_key = |r: &Rect| {
            let c = r.center();
            c.dist_sq(center)
        };
        match self.node_mut(node_id) {
            Node::Leaf(es) => {
                es.sort_by(|a, b| {
                    sort_key(&Rect::from_point(a.point))
                        .total_cmp(&sort_key(&Rect::from_point(b.point)))
                });
                es.split_off(es.len() - p)
                    .into_iter()
                    .map(AnyEntry::Leaf)
                    .collect()
            }
            Node::Internal(bs) => {
                bs.sort_by(|a, b| sort_key(&a.mbr).total_cmp(&sort_key(&b.mbr)));
                bs.split_off(bs.len() - p)
                    .into_iter()
                    .map(AnyEntry::Branch)
                    .collect()
            }
        }
    }

    /// Splits an overflowing node in place, returning the branch for its new
    /// sibling (to be added to the parent or a fresh root).
    fn split_node(&mut self, node_id: PageId) -> Branch {
        self.touch(node_id);
        let node = self.nodes[node_id.index()]
            .take()
            .expect("dangling page id");
        match node {
            Node::Leaf(es) => {
                let (left, right) = rstar_split(&self.params, es);
                self.nodes[node_id.index()] = Some(Node::Leaf(left));
                let right_node = Node::Leaf(right);
                let mbr = right_node.mbr();
                let child = self.alloc(right_node);
                Branch { mbr, child }
            }
            Node::Internal(bs) => {
                let (left, right) = rstar_split(&self.params, bs);
                self.nodes[node_id.index()] = Some(Node::Internal(left));
                let right_node = Node::Internal(right);
                let mbr = right_node.mbr();
                let child = self.alloc(right_node);
                Branch { mbr, child }
            }
        }
    }

    /// Removes the point `(id, point)`; `point` must equal the coordinates
    /// the entry was inserted with. Returns whether an entry was removed.
    ///
    /// Underfull nodes are condensed: their surviving entries re-enter the
    /// tree at their original level (Guttman's `CondenseTree`), and a root
    /// with a single child is collapsed.
    pub fn remove(&mut self, id: PointId, point: Point) -> bool {
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let Some(leaf_id) = self.find_leaf(self.root, id, point, &mut path) else {
            return false;
        };
        self.version += 1;
        match self.node_mut(leaf_id) {
            Node::Leaf(es) => {
                let pos = es
                    .iter()
                    .position(|e| e.id == id)
                    .expect("find_leaf returned a leaf without the entry");
                es.swap_remove(pos);
            }
            Node::Internal(_) => unreachable!(),
        }
        self.len -= 1;
        self.condense(leaf_id, path);
        true
    }

    /// Locates the leaf holding `(id, point)`, recording the descent path as
    /// `(parent_page, child_index)` pairs.
    fn find_leaf(
        &self,
        node_id: PageId,
        id: PointId,
        point: Point,
        path: &mut Vec<(PageId, usize)>,
    ) -> Option<PageId> {
        match self.node(node_id) {
            Node::Leaf(es) => es.iter().any(|e| e.id == id).then_some(node_id),
            Node::Internal(bs) => {
                for (i, b) in bs.iter().enumerate() {
                    if b.mbr.contains_point(point) {
                        path.push((node_id, i));
                        if let Some(found) = self.find_leaf(b.child, id, point, path) {
                            return Some(found);
                        }
                        path.pop();
                    }
                }
                None
            }
        }
    }

    /// Guttman `CondenseTree`: walk the deletion path bottom-up, dissolving
    /// underfull nodes and collecting their entries for reinsertion.
    fn condense(&mut self, leaf_id: PageId, mut path: Vec<(PageId, usize)>) {
        // (entries, level) pairs awaiting reinsertion.
        let mut orphans: Vec<(AnyEntry, usize)> = Vec::new();
        let mut current = leaf_id;
        let mut level = 0usize;
        while let Some((parent, child_idx)) = path.pop() {
            if self.node(current).len() < self.params.min_entries {
                // Dissolve `current`: unhook from parent, orphan its entries.
                match self.nodes[current.index()].take().expect("dangling page") {
                    Node::Leaf(es) => {
                        orphans.extend(es.into_iter().map(|e| (AnyEntry::Leaf(e), 0)));
                    }
                    Node::Internal(bs) => {
                        orphans.extend(bs.into_iter().map(|b| (AnyEntry::Branch(b), level)));
                    }
                }
                self.dealloc(current);
                match self.node_mut(parent) {
                    Node::Internal(bs) => {
                        bs.swap_remove(child_idx);
                    }
                    Node::Leaf(_) => unreachable!(),
                }
            } else {
                // Keep the node; refresh its MBR in the parent.
                let mbr = self.node(current).mbr();
                match self.node_mut(parent) {
                    Node::Internal(bs) => bs[child_idx].mbr = mbr,
                    Node::Leaf(_) => unreachable!(),
                }
            }
            current = parent;
            level += 1;
        }
        // Reinsert orphans. Branch orphans recorded at level L (the level of
        // the node that contained them) point at children of level L-1 and
        // must land back in a node of level L.
        for (entry, entry_level) in orphans {
            let mut reinserted = vec![false; self.height];
            self.insert_any(entry, entry_level, &mut reinserted);
        }
        // Collapse a root chain: an internal root with one child loses a
        // level; an internal root with zero children becomes an empty leaf.
        loop {
            match self.node(self.root) {
                Node::Internal(bs) if bs.len() == 1 => {
                    let child = bs[0].child;
                    self.dealloc(self.root);
                    self.root = child;
                    self.height -= 1;
                }
                Node::Internal(bs) if bs.is_empty() => {
                    *self.node_mut(self.root) = Node::Leaf(Vec::new());
                    self.height = 1;
                    break;
                }
                _ => break,
            }
        }
    }

    /// Size of the page arena including freed slots (an upper bound on
    /// every live page id; used by the packing pass).
    #[inline]
    pub(crate) fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Current value of the mutation clock (recorded by snapshots).
    #[inline]
    pub(crate) fn version(&self) -> u64 {
        self.version
    }

    /// This tree instance's identity token (recorded by snapshots).
    #[inline]
    pub(crate) fn tree_id(&self) -> u64 {
        self.tree_id
    }

    /// Mutation-clock value at which arena slot `id` last changed.
    #[inline]
    pub(crate) fn page_version(&self, id: PageId) -> u64 {
        self.page_version[id.index()]
    }

    /// Number of live pages that changed since `prev` was frozen — the
    /// pages [`RTree::refreeze`] will repack from the arena instead of
    /// copying from `prev`. Returns [`RTree::node_count`] (everything
    /// dirty) when `prev` was not frozen from this tree instance.
    pub fn dirty_page_count(&self, prev: &crate::PackedRTree) -> usize {
        if !prev.is_snapshot_of(self) {
            return self.node_count();
        }
        let since = prev.version();
        self.nodes
            .iter()
            .zip(&self.page_version)
            .filter(|(n, &v)| n.is_some() && v > since)
            .count()
    }

    /// Packs the tree into a read-optimized [`crate::PackedRTree`] snapshot:
    /// contiguous arenas, SoA rectangle coordinates, dense BFS page ids.
    ///
    /// The snapshot preserves the page structure exactly, so queries perform
    /// the same node accesses — only faster, because a node scan walks
    /// contiguous memory instead of chasing `Option<Node>` pointers. Freeze
    /// once after loading (or after a batch of updates) and point the query
    /// cursors at the snapshot.
    pub fn freeze(&self) -> crate::PackedRTree {
        crate::PackedRTree::freeze(self)
    }

    /// Incrementally repacks the tree into a fresh snapshot, reusing the
    /// arenas of `prev` — the snapshot a previous [`RTree::freeze`] (or
    /// `refreeze`) of **this tree instance** produced — for every page that
    /// has not changed since `prev` was taken.
    ///
    /// The result is **identical** to what a full [`RTree::freeze`] would
    /// build right now (same pages, same dense BFS ids, same SoA layout,
    /// bit-identical coordinates — the property suite pins snapshot
    /// equality and per-algorithm node accesses); only the build cost
    /// differs. Clean leaf pages are copied span-wise out of `prev`
    /// (three `memcpy`s, no arena pointer chase), clean internal pages
    /// copy their coordinate rows and only remap child ids, and dirty
    /// subtrees are repacked from the arena exactly as `freeze` does.
    ///
    /// Falls back to a full freeze (still returning a correct snapshot)
    /// when `prev` came from a different tree instance — e.g. a
    /// [`Clone`] of this tree — or from different parameters.
    pub fn refreeze(&self, prev: &crate::PackedRTree) -> crate::PackedRTree {
        crate::PackedRTree::refreeze(self, prev)
    }

    /// Iterates over every stored point (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = LeafEntry> + '_ {
        let mut stack = vec![self.root];
        std::iter::from_fn(move || loop {
            let id = stack.pop()?;
            match self.node(id) {
                Node::Leaf(es) => {
                    if !es.is_empty() {
                        // Emit this leaf's entries by pushing a sentinel-free
                        // approach: collect into the closure state.
                        return Some(es.clone());
                    }
                }
                Node::Internal(bs) => stack.extend(bs.iter().map(|b| b.child)),
            }
        })
        .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_invariants;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_params() -> RTreeParams {
        RTreeParams {
            max_entries: 4,
            min_entries: 2,
            reinsert_count: 1,
        }
    }

    fn entry(i: u64, x: f64, y: f64) -> LeafEntry {
        LeafEntry::new(PointId(i), Point::new(x, y))
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new(small_params());
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.root_mbr().is_empty());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn insert_a_few_points() {
        let mut t = RTree::new(small_params());
        for i in 0..4 {
            t.insert(entry(i, i as f64, 0.0));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.height(), 1);
        check_invariants(&t);
    }

    #[test]
    fn insert_forces_split_and_grows() {
        let mut t = RTree::new(small_params());
        for i in 0..30 {
            t.insert(entry(i, i as f64, (i % 5) as f64));
        }
        assert_eq!(t.len(), 30);
        assert!(t.height() >= 2);
        check_invariants(&t);
        let mut ids: Vec<u64> = t.iter().map(|e| e.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn insert_many_random_points_keeps_invariants() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = RTree::new(RTreeParams::with_capacity(8));
        for i in 0..2000 {
            t.insert(entry(i, rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0));
        }
        assert_eq!(t.len(), 2000);
        check_invariants(&t);
    }

    #[test]
    fn insert_duplicate_coordinates() {
        let mut t = RTree::new(small_params());
        for i in 0..50 {
            t.insert(entry(i, 1.0, 1.0));
        }
        assert_eq!(t.len(), 50);
        check_invariants(&t);
        assert_eq!(t.root_mbr(), Rect::from_point(Point::new(1.0, 1.0)));
    }

    #[test]
    fn remove_simple() {
        let mut t = RTree::new(small_params());
        for i in 0..10 {
            t.insert(entry(i, i as f64, 0.0));
        }
        assert!(t.remove(PointId(3), Point::new(3.0, 0.0)));
        assert!(!t.remove(PointId(3), Point::new(3.0, 0.0)));
        assert_eq!(t.len(), 9);
        check_invariants(&t);
        assert!(t.iter().all(|e| e.id != PointId(3)));
    }

    #[test]
    fn remove_everything_collapses_to_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = RTree::new(small_params());
        let pts: Vec<LeafEntry> = (0..200)
            .map(|i| entry(i, rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        for &e in &pts {
            t.insert(e);
        }
        check_invariants(&t);
        for &e in &pts {
            assert!(t.remove(e.id, e.point), "missing {:?}", e.id);
            check_invariants(&t);
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn mixed_insert_remove_random() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = RTree::new(RTreeParams::with_capacity(6));
        let mut live: Vec<LeafEntry> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..3000 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let e = entry(next_id, rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0);
                next_id += 1;
                t.insert(e);
                live.push(e);
            } else {
                let idx = rng.gen_range(0..live.len());
                let e = live.swap_remove(idx);
                assert!(t.remove(e.id, e.point));
            }
            if step % 500 == 0 {
                check_invariants(&t);
            }
        }
        check_invariants(&t);
        assert_eq!(t.len(), live.len());
        let mut got: Vec<u64> = t.iter().map(|e| e.id.0).collect();
        let mut want: Vec<u64> = live.iter().map(|e| e.id.0).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_with_wrong_point_hint_fails_safely() {
        let mut t = RTree::new(small_params());
        for i in 0..100 {
            t.insert(entry(i, i as f64, i as f64));
        }
        // Wrong coordinates: pruned away, nothing removed.
        assert!(!t.remove(PointId(5), Point::new(90.0, 90.0)));
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn no_reinsert_configuration_still_works() {
        let mut t = RTree::new(RTreeParams {
            max_entries: 4,
            min_entries: 2,
            reinsert_count: 0,
        });
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..500 {
            t.insert(entry(i, rng.gen::<f64>(), rng.gen::<f64>()));
        }
        assert_eq!(t.len(), 500);
        check_invariants(&t);
    }

    #[test]
    fn page_recycling_after_removals() {
        let mut t = RTree::new(small_params());
        for i in 0..500 {
            t.insert(entry(i, (i % 31) as f64, (i % 17) as f64));
        }
        let pages_full = t.node_count();
        for i in 0..400 {
            assert!(t.remove(PointId(i), Point::new((i % 31) as f64, (i % 17) as f64)));
        }
        check_invariants(&t);
        assert!(t.node_count() < pages_full);
        // Inserting again reuses freed pages rather than growing the arena.
        let arena_size = t.nodes.len();
        for i in 500..700 {
            t.insert(entry(i, (i % 29) as f64, (i % 13) as f64));
        }
        check_invariants(&t);
        assert!(t.nodes.len() <= arena_size + 5);
    }
}
