//! Structural invariant checking (used heavily by the test suites).

use crate::node::{Node, PageId};
use crate::tree::RTree;
use std::collections::HashSet;

/// Asserts every structural invariant of an R\*-tree:
///
/// 1. all leaves sit at the same depth (`height - 1` below the root);
/// 2. every non-root node holds between `min_entries` and `max_entries`
///    entries; the root holds at most `max_entries` (and, when internal, at
///    least 2);
/// 3. every branch MBR exactly equals the MBR computed from its child's
///    contents;
/// 4. no page is referenced twice and every referenced page is live;
/// 5. the tree's `len` equals the number of leaf entries.
///
/// # Panics
///
/// Panics with a descriptive message on the first violated invariant.
pub fn check_invariants(tree: &RTree) {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut leaf_entries = 0usize;
    check_node(
        tree,
        tree.root(),
        tree.height() - 1,
        true,
        &mut seen,
        &mut leaf_entries,
    );
    assert_eq!(
        leaf_entries,
        tree.len(),
        "len() does not match stored entries"
    );
}

fn check_node(
    tree: &RTree,
    id: PageId,
    level: usize,
    is_root: bool,
    seen: &mut HashSet<u32>,
    leaf_entries: &mut usize,
) {
    assert!(
        seen.insert(id.raw()),
        "page {id:?} referenced more than once"
    );
    let node = tree.node(id);
    let params = tree.params();
    if is_root {
        assert!(
            node.len() <= params.max_entries,
            "root overflow: {} entries",
            node.len()
        );
        if let Node::Internal(bs) = node {
            assert!(
                bs.len() >= 2,
                "internal root must have at least 2 children, has {}",
                bs.len()
            );
        }
    } else {
        assert!(
            node.len() >= params.min_entries && node.len() <= params.max_entries,
            "node {id:?} occupancy {} outside [{}, {}]",
            node.len(),
            params.min_entries,
            params.max_entries
        );
    }
    match node {
        Node::Leaf(es) => {
            assert_eq!(level, 0, "leaf {id:?} at level {level}");
            *leaf_entries += es.len();
            for e in es {
                assert!(e.point.is_finite(), "non-finite point in {id:?}");
            }
        }
        Node::Internal(bs) => {
            assert!(level > 0, "internal node {id:?} at leaf level");
            for b in bs {
                let child_mbr = tree.node(b.child).mbr();
                assert_eq!(
                    b.mbr, child_mbr,
                    "stale branch MBR for child {:?} of {id:?}",
                    b.child
                );
                check_node(tree, b.child, level - 1, false, seen, leaf_entries);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafEntry;
    use crate::RTreeParams;
    use gnn_geom::{Point, PointId};

    #[test]
    fn accepts_fresh_and_populated_trees() {
        let mut t = RTree::new(RTreeParams::with_capacity(4));
        check_invariants(&t);
        for i in 0..100 {
            t.insert(LeafEntry::new(
                PointId(i),
                Point::new(i as f64, (i * 7 % 13) as f64),
            ));
        }
        check_invariants(&t);
    }
}
