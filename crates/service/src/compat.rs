//! Deprecated shims for superseded API surfaces.
//!
//! The old entry points — `try_submit`, `submit_points`, `submit_batch`,
//! the `ServiceError` name, and the panicking `RefreshDriver::shutdown` —
//! live here for one release so downstream code migrates at its own pace.
//! Everything funnels into [`Service::submit`] /
//! [`RefreshDriver::join`]; the shims only adapt signatures. This module
//! is the single place where the deprecation lint is allowed; everywhere
//! else `-D warnings` keeps new uses of the old API out.
#![allow(deprecated)]

use crate::{RefreshDriver, RefreshOutcome, ResponseHandle, Service, Submission, SubmitError};
use gnn_core::{QueryGroupError, QueryRequest};
use gnn_geom::Point;

/// Renamed to [`SubmitError`] (one exhaustive error for every submission
/// path).
#[deprecated(since = "0.6.0", note = "renamed to `SubmitError`")]
pub type ServiceError = SubmitError;

impl Service {
    /// Non-blocking submit, superseded by
    /// `submit(Submission::request(r).blocking(false))`.
    ///
    /// Fails with the request and [`SubmitError::QueueFull`] when the
    /// routed shard's bounded queue is full, or [`SubmitError::Shutdown`]
    /// when the service has closed its queues. The rejected request is
    /// handed back by value so the caller can retry or drop it without
    /// cloning.
    #[deprecated(
        since = "0.6.0",
        note = "use `submit(Submission::request(request).blocking(false))`"
    )]
    #[allow(clippy::result_large_err)]
    pub fn try_submit(
        &self,
        request: QueryRequest,
    ) -> Result<ResponseHandle, (QueryRequest, ServiceError)> {
        self.enqueue_single(request, false)
    }

    /// Convenience submit of raw points with the configured default `k`
    /// and aggregate, superseded by `submit(Submission::group(points))`.
    #[deprecated(since = "0.6.0", note = "use `submit(Submission::group(points))`")]
    pub fn submit_points(&self, points: Vec<Point>) -> Result<ResponseHandle, QueryGroupError> {
        match self.submit(Submission::group(points)) {
            Ok(handle) => Ok(handle),
            Err(SubmitError::BadGroup(e)) => Err(e),
            // Legacy contract: once the group is valid, submission itself
            // was infallible — failures surfaced on the handle instead.
            Err(_) => Ok(ResponseHandle::dead()),
        }
    }

    /// Per-request fan-out batch, superseded by
    /// `submit(Submission::batch(requests))` — which additionally executes
    /// each shard's sub-batch as one shared-traversal pass.
    ///
    /// Returns one handle per request in submission order; a request the
    /// service could not accept yields a handle reporting
    /// [`SubmitError::WorkerDied`].
    #[deprecated(since = "0.6.0", note = "use `submit(Submission::batch(requests))`")]
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = QueryRequest>,
    ) -> Vec<ResponseHandle> {
        requests
            .into_iter()
            .map(|request| {
                self.enqueue_single(request, true)
                    .unwrap_or_else(|_| ResponseHandle::dead())
            })
            .collect()
    }
}

impl RefreshDriver {
    /// The pre-0.7 join: panics on driver failure instead of returning the
    /// typed [`DriverError`](crate::DriverError).
    #[deprecated(since = "0.7.0", note = "use `join()`, which returns typed errors")]
    pub fn shutdown(self) -> RefreshOutcome {
        self.join().expect("refresh driver failed")
    }
}
