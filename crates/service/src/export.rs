//! Metrics export: text renderers for [`ServiceStats`] (Prometheus
//! exposition format and JSON) and a background [`StatsLogger`] that polls
//! [`Service::stats`] on an interval and hands each snapshot to a sink.
//!
//! The renderers are std-only string builders — no serializer dependency —
//! so any scrape endpoint or log shipper can embed them directly. Polling
//! is safe while traffic runs: `stats()` is atomic loads plus lock-free
//! ring snapshots, and rendering works on the returned snapshot, never on
//! live counters.

use crate::{Service, ServiceStats};
use gnn_telemetry::LatencySnapshot;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Seconds form of an optional duration for metric lines (`0` when the
/// histogram is empty — Prometheus summaries have no "absent" quantile).
fn secs(d: Option<Duration>) -> f64 {
    d.map_or(0.0, |d| d.as_secs_f64())
}

/// Appends the three summary quantile lines plus `_count` for one
/// histogram, with an optional extra label (e.g. `stage="execution"`).
fn summary(out: &mut String, name: &str, label: &str, snapshot: &LatencySnapshot) {
    let sep = if label.is_empty() { "" } else { "," };
    for (q, v) in [
        ("0.5", snapshot.p50()),
        ("0.95", snapshot.p95()),
        ("0.99", snapshot.p99()),
    ] {
        let _ = writeln!(out, "{name}{{{label}{sep}quantile=\"{q}\"}} {}", secs(v));
    }
    let _ = writeln!(out, "{name}_count{{{label}}} {}", snapshot.count());
}

impl ServiceStats {
    /// Renders the snapshot in the Prometheus text exposition format:
    /// counters for served queries and their costs, the fault ledger, the
    /// batch ledger, summary-style latency quantiles (overall, per stage,
    /// per shard), per-shard routing counters, and the flight-recorder
    /// drop counter. Quantiles are in seconds, from the 252-bucket
    /// histograms (≤ 25% relative bucket error).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let o = &mut out;
        let _ = writeln!(o, "# TYPE gnn_generation gauge");
        let _ = writeln!(o, "gnn_generation {}", self.generation);
        // Info-style gauge: the constant 1 carries the static simd_level
        // label, so dashboards can join any series against the ISA the
        // distance kernels actually dispatched to.
        let _ = writeln!(o, "# TYPE gnn_simd_level gauge");
        let _ = writeln!(o, "gnn_simd_level{{simd_level=\"{}\"}} 1", self.simd_level);
        for (name, value) in [
            ("gnn_queries_served_total", self.queries_served),
            ("gnn_node_accesses_total", self.node_accesses),
            ("gnn_io_total", self.io),
            ("gnn_dist_computations_total", self.dist_computations),
            ("gnn_single_shard_hits_total", self.single_shard_hits),
            ("gnn_batches_total", self.batches),
            ("gnn_batch_queries_total", self.batch_queries),
            ("gnn_batch_unique_pages_total", self.batch_unique_pages),
            (
                "gnn_batch_sequential_pages_total",
                self.batch_sequential_pages,
            ),
            ("gnn_worker_panics_total", self.faults.panics),
            ("gnn_worker_respawns_total", self.faults.respawns),
            ("gnn_shed_total", self.faults.shed),
            ("gnn_deadline_missed_total", self.faults.deadline_missed),
            ("gnn_flight_events_dropped_total", self.flight.dropped),
        ] {
            let _ = writeln!(o, "# TYPE {name} counter");
            let _ = writeln!(o, "{name} {value}");
        }
        let _ = writeln!(o, "# TYPE gnn_latency_seconds summary");
        summary(o, "gnn_latency_seconds", "", &self.latency);
        let _ = writeln!(o, "# TYPE gnn_stage_seconds summary");
        for (stage, snapshot) in self.stages.named() {
            summary(
                o,
                "gnn_stage_seconds",
                &format!("stage=\"{stage}\""),
                snapshot,
            );
        }
        let _ = writeln!(o, "# TYPE gnn_shard_routed_total counter");
        for shard in &self.per_shard {
            let _ = writeln!(
                o,
                "gnn_shard_routed_total{{shard=\"{}\"}} {}",
                shard.shard, shard.routed
            );
        }
        let _ = writeln!(o, "# TYPE gnn_shard_queries_total counter");
        for shard in &self.per_shard {
            let _ = writeln!(
                o,
                "gnn_shard_queries_total{{shard=\"{}\"}} {}",
                shard.shard, shard.queries
            );
        }
        let _ = writeln!(o, "# TYPE gnn_shard_latency_seconds summary");
        for shard in &self.per_shard {
            summary(
                o,
                "gnn_shard_latency_seconds",
                &format!("shard=\"{}\"", shard.shard),
                &shard.latency,
            );
        }
        out
    }

    /// Renders the snapshot as one JSON object (hand-built, schema-stable:
    /// counters, fault and batch ledgers, and `{p50,p95,p99,count}`
    /// micro­second quantile objects for the overall, per-stage, and
    /// per-shard histograms). Meant for structured log lines — the
    /// [`StatsLogger`] example sink.
    pub fn render_json(&self) -> String {
        let us = |d: Option<Duration>| d.map_or(0.0, |d| d.as_secs_f64() * 1e6);
        let quantiles = |s: &LatencySnapshot| {
            format!(
                "{{\"p50_us\":{:.3},\"p95_us\":{:.3},\"p99_us\":{:.3},\"count\":{}}}",
                us(s.p50()),
                us(s.p95()),
                us(s.p99()),
                s.count()
            )
        };
        let mut out = String::new();
        let o = &mut out;
        let _ = write!(
            o,
            "{{\"generation\":{},\"simd_level\":\"{}\",\"queries_served\":{},\
             \"node_accesses\":{},\"io\":{},\
             \"dist_computations\":{},\"single_shard_hits\":{},\"batches\":{},\
             \"batch_queries\":{},\"batch_unique_pages\":{},\"batch_sequential_pages\":{}",
            self.generation,
            self.simd_level,
            self.queries_served,
            self.node_accesses,
            self.io,
            self.dist_computations,
            self.single_shard_hits,
            self.batches,
            self.batch_queries,
            self.batch_unique_pages,
            self.batch_sequential_pages
        );
        let _ = write!(
            o,
            ",\"faults\":{{\"panics\":{},\"respawns\":{},\"shed\":{},\"deadline_missed\":{}}}",
            self.faults.panics, self.faults.respawns, self.faults.shed, self.faults.deadline_missed
        );
        let _ = write!(o, ",\"latency\":{}", quantiles(&self.latency));
        let _ = write!(o, ",\"stages\":{{");
        for (i, (stage, snapshot)) in self.stages.named().iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(o, "{comma}\"{stage}\":{}", quantiles(snapshot));
        }
        let _ = write!(o, "}},\"shards\":[");
        for (i, shard) in self.per_shard.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(
                o,
                "{comma}{{\"shard\":{},\"routed\":{},\"queries\":{},\"latency\":{}}}",
                shard.shard,
                shard.routed,
                shard.queries,
                quantiles(&shard.latency)
            );
        }
        let _ = write!(
            o,
            "],\"flight\":{{\"events\":{},\"dropped\":{}}}}}",
            self.flight.events.len(),
            self.flight.dropped
        );
        out
    }
}

/// A background thread that polls [`Service::stats`] every `interval` and
/// hands the snapshot to a caller sink — the push half of metrics export
/// (pair [`ServiceStats::render_prometheus`] with any HTTP handler for the
/// pull half). Stops on [`StatsLogger::stop`] or drop; stopping joins the
/// thread, so the sink is never called after `stop` returns.
#[derive(Debug)]
pub struct StatsLogger {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsLogger {
    /// Spawns the logger. The sink runs on the logger thread; keep it
    /// cheap (format + enqueue) — a slow sink delays the next poll, never
    /// the service. The first snapshot is taken after one full interval.
    pub fn start(
        service: Arc<Service>,
        interval: Duration,
        mut sink: impl FnMut(&ServiceStats) + Send + 'static,
    ) -> StatsLogger {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gnn-stats-logger".into())
            .spawn(move || {
                // Sleep in short slices so `stop` is honored promptly even
                // with long intervals.
                let slice = interval.min(Duration::from_millis(50));
                let mut elapsed = Duration::ZERO;
                loop {
                    if stop_flag.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        sink(&service.stats());
                    }
                }
            })
            .expect("spawn stats logger thread");
        StatsLogger {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it. Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatsLogger {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lock_unpoisoned, ServiceConfig};
    use gnn_core::{QueryGroup, QueryRequest};
    use gnn_geom::{Point, PointId};
    use gnn_rtree::{LeafEntry, RTree, RTreeParams};
    use std::sync::Mutex;

    fn small_service() -> Service {
        let tree = RTree::bulk_load(
            RTreeParams::with_capacity(8),
            (0..64).map(|i| {
                LeafEntry::new(
                    PointId(i as u64),
                    Point::new((i % 8) as f64 * 3.0, (i / 8) as f64 * 3.0),
                )
            }),
        );
        Service::start(Arc::new(tree.freeze()), ServiceConfig::with_workers(1))
    }

    fn run_queries(service: &Service, n: usize) {
        for i in 0..n {
            let group =
                QueryGroup::sum(vec![Point::new(i as f64, 2.0), Point::new(5.0, 9.0)]).unwrap();
            let handle = service.submit(QueryRequest::new(group, 2)).unwrap();
            handle.wait().unwrap();
        }
    }

    #[test]
    fn prometheus_rendering_carries_counters_and_quantiles() {
        let service = small_service();
        run_queries(&service, 5);
        let text = service.stats().render_prometheus();
        assert!(text.contains("gnn_queries_served_total 5"));
        assert!(text.contains("gnn_generation 1"));
        assert!(text.contains("gnn_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("gnn_latency_seconds_count{} 5"));
        assert!(text.contains("gnn_stage_seconds{stage=\"execution\",quantile=\"0.99\"}"));
        assert!(text.contains("gnn_shard_routed_total{shard=\"0\"} 5"));
        let level = gnn_geom::simd::dispatch_level().label();
        assert!(text.contains(&format!("gnn_simd_level{{simd_level=\"{level}\"}} 1")));
        // Every metric line is "name value" or "name{labels} value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
        }
        service.shutdown();
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let service = small_service();
        run_queries(&service, 3);
        let json = service.stats().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries_served\":3"));
        assert!(json.contains("\"stages\":{\"queue_wait\":"));
        assert!(json.contains("\"flight\":{"));
        let level = gnn_geom::simd::dispatch_level().label();
        assert!(json.contains(&format!("\"simd_level\":\"{level}\"")));
        // Balanced braces (a cheap structural check without a parser).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        service.shutdown();
    }

    #[test]
    fn stats_logger_delivers_snapshots_and_stops() {
        let service = Arc::new(small_service());
        run_queries(&service, 4);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let mut logger = StatsLogger::start(
            Arc::clone(&service),
            Duration::from_millis(10),
            move |stats| {
                lock_unpoisoned(&sink_seen).push(stats.queries_served);
            },
        );
        while lock_unpoisoned(&seen).is_empty() {
            std::thread::yield_now();
        }
        logger.stop();
        let collected = lock_unpoisoned(&seen).clone();
        assert!(collected.iter().all(|&q| q == 4));
        let after = collected.len();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(lock_unpoisoned(&seen).len(), after, "sink ran after stop");
        Arc::try_unwrap(service)
            .expect("logger released its handle")
            .shutdown();
    }
}
