//! Deterministic fault injection and the service's fault ledger.
//!
//! Fault tolerance is only trustworthy if it is *testable*: "workers
//! survive panics" means nothing without a way to make a specific worker
//! panic on a specific query, every run, on any machine. [`FaultPlan`] is
//! that switchboard — a plan of injected faults threaded through
//! [`ServiceConfig`](crate::ServiceConfig) and consulted by the workers
//! and the [`RefreshDriver`](crate::RefreshDriver):
//!
//! * **targeted panics** ([`FaultPlan::panic_on`]): worker `w` panics on
//!   its `n`-th executed query — the unit-test primitive (panic on the
//!   K-th query of a batch, panic every worker of a pool, …);
//! * **seeded panic rates** ([`FaultPlan::seeded_panics`]): each
//!   `(worker, nth)` pair panics with probability `rate`, decided by a
//!   seeded hash — the same seed injects the same faults on every run, so
//!   a resilience benchmark under "1% of queries panic" is reproducible
//!   bit for bit;
//! * **injected latency** ([`FaultPlan::with_query_latency`]): every query
//!   sleeps before executing, turning a microsecond-scale test snapshot
//!   into a saturable service with a known capacity — the overload knob;
//! * **refreeze failure** ([`FaultPlan::fail_refreeze`]): the refresh
//!   driver's `n`-th refreeze cycle fails, exercising the typed
//!   [`DriverError`](crate::DriverError) path.
//!
//! Injection happens *around* query execution (before the algorithm runs),
//! never inside it — a non-faulted query's results stay bit-identical to
//! the sequential reference no matter what the plan injects elsewhere.
//! An empty plan (the [`Default`]) is checked with one `Vec::is_empty` /
//! `Option::is_none` per query; production configs pay essentially
//! nothing.
//!
//! [`FaultLedger`] is the observability half: every panic, respawn, shed
//! request, and missed deadline is counted, aggregated into
//! [`ServiceStats::faults`](crate::ServiceStats::faults) — whether the
//! fault was injected or real.

use std::time::Duration;

/// A deterministic plan of injected faults (see the module docs). The
/// default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Explicit `(worker, nth)` panic points, `nth` counting executed
    /// queries per worker from 1.
    panics: Vec<(usize, u64)>,
    /// `(rate, seed)`: every `(worker, nth)` panics with probability
    /// `rate`, decided by a seeded hash.
    panic_rate: Option<(f64, u64)>,
    /// Sleep injected before every query executes.
    latency: Option<Duration>,
    /// Refreeze cycles (counting from 1) the refresh driver fails on.
    refreeze_failures: Vec<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (same as [`FaultPlan::default`]).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panics worker `worker` (0-based, global across pools) on the `nth`
    /// query it executes (1-based). Chainable; duplicate points are
    /// harmless.
    ///
    /// # Panics
    ///
    /// Panics when `nth` is zero.
    pub fn panic_on(mut self, worker: usize, nth: u64) -> FaultPlan {
        assert!(nth > 0, "query numbers count from 1");
        self.panics.push((worker, nth));
        self
    }

    /// Panics every `(worker, nth)` execution with probability `rate`,
    /// decided by a hash of `(seed, worker, nth)` — the same seed yields
    /// the same fault schedule on every run and every machine.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not in `[0, 1]`.
    pub fn seeded_panics(mut self, rate: f64, seed: u64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&rate),
            "panic rate must be in [0, 1], got {rate}"
        );
        self.panic_rate = Some((rate, seed));
        self
    }

    /// Injects `latency` of sleep before every query executes — the knob
    /// that gives a test service a known, saturable capacity.
    pub fn with_query_latency(mut self, latency: Duration) -> FaultPlan {
        self.latency = Some(latency);
        self
    }

    /// Fails the refresh driver's `cycle`-th refreeze (1-based): the
    /// driver stops and [`RefreshDriver::join`](crate::RefreshDriver::join)
    /// returns [`DriverError::RefreezeFailed`](crate::DriverError).
    ///
    /// # Panics
    ///
    /// Panics when `cycle` is zero.
    pub fn fail_refreeze(mut self, cycle: u64) -> FaultPlan {
        assert!(cycle > 0, "refreeze cycles count from 1");
        self.refreeze_failures.push(cycle);
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.panic_rate.is_none()
            && self.latency.is_none()
            && self.refreeze_failures.is_empty()
    }

    /// Whether worker `worker`'s `nth` executed query (1-based) should
    /// panic under this plan.
    pub fn should_panic(&self, worker: usize, nth: u64) -> bool {
        if self.panics.contains(&(worker, nth)) {
            return true;
        }
        match self.panic_rate {
            None => false,
            Some((rate, seed)) => {
                // splitmix64-style mix of (seed, worker, nth): the top 53
                // bits become a uniform f64 in [0, 1).
                let mut z = seed
                    ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ nth.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                ((z >> 11) as f64 / (1u64 << 53) as f64) < rate
            }
        }
    }

    /// The per-query sleep the plan injects, if any.
    pub fn injected_latency(&self) -> Option<Duration> {
        self.latency
    }

    /// Whether the `cycle`-th refreeze (1-based) should fail.
    pub fn refreeze_fails(&self, cycle: u64) -> bool {
        self.refreeze_failures.contains(&cycle)
    }
}

/// Silences the default panic-hook output for **injected** panics (the
/// `"injected fault: …"` payloads a [`FaultPlan`] panic point raises),
/// forwarding every other panic to the previously installed hook.
/// Process-wide and idempotent.
///
/// The supervisor catches injected panics and answers them as typed
/// responses, but the panic hook still runs first — a resilience bench
/// injecting panics at 1% would otherwise bury its own output under
/// backtraces that are part of the experiment. Real (non-injected) panics
/// keep their full report.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected fault"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Fault-event counters, aggregated across all workers into
/// [`ServiceStats::faults`](crate::ServiceStats::faults). Every event is
/// counted whether the fault was injected by a [`FaultPlan`] or real.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Queries whose execution panicked. Each one was answered with
    /// [`QueryError::WorkerPanicked`](crate::QueryError) — a panic is a
    /// typed response, never a lost reply.
    pub panics: u64,
    /// Times a worker's serving state (cursors + scratch) was rebuilt
    /// after a panic. Pool capacity is invariant: `respawns == panics`
    /// in steady state.
    pub respawns: u64,
    /// Requests shed at dequeue because their
    /// [`deadline`](gnn_core::QueryRequest::deadline) had already expired
    /// (answered with [`QueryError::DeadlineExceeded`](crate::QueryError)).
    pub shed: u64,
    /// Requests that *executed* past their deadline: dequeued in time but
    /// answered late. They still got a normal response — this counter is
    /// the SLO-miss signal, not an error count.
    pub deadline_missed: u64,
}

impl FaultLedger {
    /// Component-wise sum.
    pub fn merged(self, other: FaultLedger) -> FaultLedger {
        FaultLedger {
            panics: self.panics + other.panics,
            respawns: self.respawns + other.respawns,
            shed: self.shed + other.shed,
            deadline_missed: self.deadline_missed + other.deadline_missed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.should_panic(0, 1));
        assert!(plan.injected_latency().is_none());
        assert!(!plan.refreeze_fails(1));
    }

    #[test]
    fn explicit_panic_points_fire_exactly_where_placed() {
        let plan = FaultPlan::none().panic_on(1, 3).panic_on(0, 1);
        assert!(!plan.is_empty());
        assert!(plan.should_panic(1, 3));
        assert!(plan.should_panic(0, 1));
        assert!(!plan.should_panic(1, 2));
        assert!(!plan.should_panic(0, 3));
        assert!(!plan.should_panic(2, 1));
    }

    #[test]
    fn seeded_rate_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::none().seeded_panics(0.05, 42);
        let again = FaultPlan::none().seeded_panics(0.05, 42);
        let mut hits = 0u64;
        for worker in 0..4 {
            for nth in 1..=2_000u64 {
                let fire = plan.should_panic(worker, nth);
                assert_eq!(fire, again.should_panic(worker, nth), "determinism");
                hits += u64::from(fire);
            }
        }
        // 8000 draws at 5%: expect ~400; a seeded hash stays well inside
        // a generous band.
        assert!((200..=600).contains(&hits), "got {hits} panics");
        // Rate 0 and 1 degenerate correctly.
        assert!(!FaultPlan::none().seeded_panics(0.0, 42).should_panic(0, 1));
        assert!(FaultPlan::none().seeded_panics(1.0, 42).should_panic(0, 1));
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = FaultPlan::none().seeded_panics(0.1, 1);
        let b = FaultPlan::none().seeded_panics(0.1, 2);
        let differs = (1..=1_000u64).any(|n| a.should_panic(0, n) != b.should_panic(0, n));
        assert!(differs, "different seeds must give different schedules");
    }

    #[test]
    fn refreeze_failures_hit_listed_cycles_only() {
        let plan = FaultPlan::none().fail_refreeze(2).fail_refreeze(5);
        assert!(!plan.refreeze_fails(1));
        assert!(plan.refreeze_fails(2));
        assert!(!plan.refreeze_fails(3));
        assert!(plan.refreeze_fails(5));
    }

    #[test]
    fn ledger_merges_component_wise() {
        let a = FaultLedger {
            panics: 1,
            respawns: 1,
            shed: 3,
            deadline_missed: 2,
        };
        let b = FaultLedger {
            panics: 2,
            respawns: 2,
            shed: 0,
            deadline_missed: 1,
        };
        assert_eq!(
            a.merged(b),
            FaultLedger {
                panics: 3,
                respawns: 3,
                shed: 3,
                deadline_missed: 3,
            }
        );
    }

    #[test]
    #[should_panic(expected = "count from 1")]
    fn zeroth_query_rejected() {
        let _ = FaultPlan::none().panic_on(0, 0);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::none().seeded_panics(1.5, 0);
    }
}
