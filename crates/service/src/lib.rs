//! # gnn-service — sharded, multi-threaded GNN query serving
//!
//! The paper's algorithms answer one query at a time; the north star is a
//! system that serves sustained multi-user traffic. This crate turns a
//! frozen [`PackedRTree`] snapshot into an embeddable query-serving engine:
//!
//! * the snapshot is **immutable and shared** (`Arc<PackedRTree>` — the
//!   storage layer is `Send + Sync` by construction, statically asserted in
//!   `gnn-rtree`) and lives in a **hot-swap slot**: [`Service::publish`]
//!   atomically installs a new snapshot (typically a cheap
//!   [`gnn_rtree::RTree::refreeze`] of the mutated source tree) while
//!   queries keep flowing — workers pick the new generation up between
//!   queries with a single atomic check, in-flight queries finish on the
//!   snapshot they started on, and nobody ever blocks on the swap;
//! * a fixed pool of worker threads (std `thread` + a bounded channel — no
//!   external dependencies) pulls requests from a shared queue;
//! * every worker owns its own [`TreeCursor`], [`QueryScratch`] and
//!   [`Planner`], so the zero-allocation single-thread hot path of the
//!   packed engine becomes a zero-allocation **per-core** hot path — no
//!   shared mutable state is touched while a query runs;
//! * per-worker counters (queries, node accesses, simulated I/O, distance
//!   computations) and a fixed-bucket response-latency histogram (measured
//!   submit → response, so queue wait under overload is visible) are
//!   aggregated on demand into a [`ServiceStats`] snapshot, so the paper's
//!   node-access cost metric survives concurrency exactly.
//!
//! Determinism is the correctness anchor: a query's node accesses and
//! results depend only on the snapshot and the request (per-worker cursors
//! are unbuffered, so no cross-query cache state exists), which means the
//! same workload submitted through the service and run sequentially through
//! [`Planner::run_many_collect`] produces identical ids, distances, and
//! total node accesses — on any worker count, in any completion order. The
//! workspace-level `service_determinism` test pins this on 1, 2 and 8
//! workers. Under live updates the anchor holds **per generation**: every
//! [`QueryResponse`] is tagged with the generation of the snapshot that
//! served it, and all responses of one generation match the sequential
//! reference on that snapshot (pinned by the workspace-level `hot_swap`
//! test). Queries whose dequeue races a `publish` may legitimately be
//! served by either neighboring generation — the tag says which.
//!
//! ```
//! use gnn_core::{QueryGroup, QueryRequest};
//! use gnn_geom::{Point, PointId};
//! use gnn_rtree::{LeafEntry, RTree, RTreeParams};
//! use gnn_service::{Service, ServiceConfig};
//! use std::sync::Arc;
//!
//! let mut tree = RTree::new(RTreeParams::default());
//! for i in 0..100 {
//!     tree.insert(LeafEntry::new(PointId(i), Point::new(i as f64, 0.0)));
//! }
//! let snapshot = Arc::new(tree.freeze());
//! let service = Service::start(snapshot, ServiceConfig::with_workers(2));
//! let group = QueryGroup::sum(vec![Point::new(3.9, 0.0), Point::new(4.1, 0.0)]).unwrap();
//! let handle = service.submit(QueryRequest::new(group, 1));
//! let response = handle.wait().unwrap();
//! assert_eq!(response.neighbors[0].id, PointId(4));
//! let stats = service.shutdown();
//! assert_eq!(stats.queries_served, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;

pub use histogram::{LatencyHistogram, LatencySnapshot, BUCKETS};

use gnn_core::{Aggregate, Planner, QueryGroup, QueryGroupError, QueryRequest, QueryResponse};
use gnn_core::{QueryScratch, QueryStats};
use gnn_geom::Point;
use gnn_rtree::PackedRTree;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`Service`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads in the pool (≥ 1). Each owns a cursor + scratch.
    pub workers: usize,
    /// Bounded request-queue depth (≥ 1): [`Service::submit`] blocks and
    /// [`Service::try_submit`] fails once this many requests are pending.
    pub queue_depth: usize,
    /// `k` used by the [`Service::submit_points`] convenience entry.
    pub default_k: usize,
    /// Aggregate used by [`Service::submit_points`].
    pub default_aggregate: Aggregate,
    /// The planner each worker routes [`gnn_core::Algo::Auto`] requests
    /// through.
    pub planner: Planner,
}

impl Default for ServiceConfig {
    /// One worker per available core, queue depth 1024, `k = 8`, SUM.
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            queue_depth: 1024,
            default_k: 8,
            default_aggregate: Aggregate::Sum,
            planner: Planner::new(),
        }
    }
}

impl ServiceConfig {
    /// The default configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

/// Why a submission or wait failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded request queue was full ([`Service::try_submit`]).
    QueueFull,
    /// The worker serving this request disappeared without responding, or
    /// (on submission) every worker had already died. A worker dies only
    /// by panicking inside a query; results for other requests are
    /// unaffected.
    WorkerGone,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ServiceError::QueueFull => "request queue is full",
            ServiceError::WorkerGone => "worker terminated without responding",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ServiceError {}

/// A pending response: redeem with [`ResponseHandle::wait`].
#[derive(Debug)]
pub struct ResponseHandle {
    rx: Receiver<QueryResponse>,
}

impl ResponseHandle {
    /// Blocks until the query completes and returns its response.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::WorkerGone)
    }

    /// Non-blocking poll: `Some` once the response is ready (errors map to
    /// `Some(Err(WorkerGone))`), `None` while the query is still in flight.
    pub fn poll(&self) -> Option<Result<QueryResponse, ServiceError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(Ok(r)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceError::WorkerGone)),
        }
    }
}

/// Locks a mutex, recovering from poisoning: a worker that panicked inside
/// a query may have died holding a lock, but every structure guarded here
/// (the snapshot slot, the dequeue end, the sender slot) stays sound — the
/// panic cannot have left it mid-mutation. One policy, one place.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The hot-swap publication slot: the current snapshot plus its generation.
///
/// Hand-rolled `ArcSwap` equivalent with no dependencies: publishers
/// replace the `Arc` under a mutex and bump the generation; workers watch
/// the generation with one atomic load between queries (the hot path never
/// locks) and reload the `Arc` — briefly taking the uncontended lock — only
/// when it changed. Readers of an old generation keep their `Arc` alive, so
/// in-flight queries always finish on the snapshot they started on and old
/// snapshots are freed exactly when the last worker moves off them.
struct SnapshotSlot {
    current: Mutex<Arc<PackedRTree>>,
    generation: AtomicU64,
}

impl SnapshotSlot {
    /// Wraps the initial snapshot as generation 1.
    fn new(initial: Arc<PackedRTree>) -> Self {
        SnapshotSlot {
            current: Mutex::new(initial),
            generation: AtomicU64::new(1),
        }
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The current `(snapshot, generation)` pair, read consistently (the
    /// generation is only ever bumped under the same lock).
    fn load(&self) -> (Arc<PackedRTree>, u64) {
        let guard = lock_unpoisoned(&self.current);
        let generation = self.generation.load(Ordering::Acquire);
        (Arc::clone(&guard), generation)
    }

    fn publish(&self, snapshot: Arc<PackedRTree>) -> u64 {
        let mut guard = lock_unpoisoned(&self.current);
        *guard = snapshot;
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// One unit of work on the queue.
struct Job {
    request: QueryRequest,
    reply: mpsc::Sender<QueryResponse>,
    /// When the request entered the queue; response latency is measured
    /// from here, so time spent waiting behind other requests is visible
    /// in the histogram (the open-loop contract).
    submitted: Instant,
}

/// Shared per-worker counters (written lock-free by the worker, read by
/// [`Service::stats`]).
#[derive(Debug)]
struct WorkerCounters {
    queries: AtomicU64,
    node_accesses: AtomicU64,
    io: AtomicU64,
    dist_computations: AtomicU64,
    busy_nanos: AtomicU64,
    latency: LatencyHistogram,
}

impl WorkerCounters {
    fn new() -> Self {
        WorkerCounters {
            queries: AtomicU64::new(0),
            node_accesses: AtomicU64::new(0),
            io: AtomicU64::new(0),
            dist_computations: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    fn record(&self, stats: &QueryStats, execution: Duration, response: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.node_accesses
            .fetch_add(stats.data_tree.logical, Ordering::Relaxed);
        self.io.fetch_add(stats.data_tree.io, Ordering::Relaxed);
        self.dist_computations
            .fetch_add(stats.dist_computations, Ordering::Relaxed);
        self.busy_nanos.fetch_add(
            u64::try_from(execution.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.latency.record(response);
    }

    fn snapshot(&self, worker: usize) -> WorkerSnapshot {
        WorkerSnapshot {
            worker,
            queries: self.queries.load(Ordering::Relaxed),
            node_accesses: self.node_accesses.load(Ordering::Relaxed),
            io: self.io.load(Ordering::Relaxed),
            dist_computations: self.dist_computations.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time counters of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Worker index (0-based).
    pub worker: usize,
    /// Queries served by this worker.
    pub queries: u64,
    /// Logical node accesses performed (the paper's NA metric).
    pub node_accesses: u64,
    /// Simulated I/O (equals `node_accesses` — worker cursors are
    /// unbuffered so per-query accounting stays deterministic).
    pub io: u64,
    /// Distance evaluations (CPU proxy).
    pub dist_computations: u64,
    /// Total wall time spent inside query execution (queue wait excluded —
    /// that shows up in the latency histogram instead).
    pub busy: Duration,
}

/// Aggregated service counters: per-worker snapshots, their totals, and the
/// merged latency histogram.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// The snapshot generation currently published (1 for the snapshot the
    /// service started on; each [`Service::publish`] bumps it). Individual
    /// responses carry the generation that actually served them in
    /// [`QueryResponse::generation`], which is how determinism stays
    /// pinnable per generation under hot swaps.
    pub generation: u64,
    /// Total queries served.
    pub queries_served: u64,
    /// Total logical node accesses — comparable 1:1 with the sum of
    /// `QueryStats::data_tree.logical` over a sequential run of the same
    /// workload.
    pub node_accesses: u64,
    /// Total simulated I/O.
    pub io: u64,
    /// Total distance evaluations.
    pub dist_computations: u64,
    /// Per-worker breakdown (length = configured workers).
    pub per_worker: Vec<WorkerSnapshot>,
    /// Merged response-latency histogram (`p50()`/`p95()`/`p99()`).
    /// Samples measure **submit → response** — queueing plus execution —
    /// so an overloaded service shows its backlog in the tail percentiles
    /// (the open-loop measurement contract).
    pub latency: LatencySnapshot,
}

/// The serving engine: a hot-swappable snapshot slot, a bounded queue, and
/// a fixed worker pool. See the crate docs for the design.
pub struct Service {
    /// `None` once shutdown has been initiated — behind a mutex so
    /// [`Service::initiate_shutdown`] can close the queue from `&self`
    /// (e.g. from another thread racing in-flight submissions).
    tx: Mutex<Option<SyncSender<Job>>>,
    slot: Arc<SnapshotSlot>,
    workers: Vec<JoinHandle<()>>,
    counters: Vec<Arc<WorkerCounters>>,
    config: ServiceConfig,
}

impl Service {
    /// Spins up the worker pool over `snapshot`.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` or `config.queue_depth` is zero.
    pub fn start(snapshot: Arc<PackedRTree>, config: ServiceConfig) -> Service {
        assert!(config.workers > 0, "service needs at least one worker");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let (tx, rx) = sync_channel::<Job>(config.queue_depth);
        // std's Receiver is single-consumer; the pool shares it behind a
        // mutex. The lock is held only for the dequeue itself, never while
        // a query runs.
        let rx = Arc::new(Mutex::new(rx));
        let slot = Arc::new(SnapshotSlot::new(snapshot));
        let mut workers = Vec::with_capacity(config.workers);
        let mut counters = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let counter = Arc::new(WorkerCounters::new());
            counters.push(Arc::clone(&counter));
            let slot = Arc::clone(&slot);
            let rx = Arc::clone(&rx);
            let planner = config.planner;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gnn-worker-{w}"))
                    .spawn(move || worker_loop(&slot, &rx, planner, &counter))
                    .expect("spawn worker thread"),
            );
        }
        Service {
            tx: Mutex::new(Some(tx)),
            slot,
            workers,
            counters,
            config,
        }
    }

    /// Atomically publishes a new snapshot and returns its generation.
    ///
    /// Workers pick the new snapshot up **between** queries: the in-flight
    /// query of every worker finishes on the snapshot it started on, no
    /// worker ever blocks on the swap (the hot path checks one atomic), and
    /// any request dequeued after `publish` returns is served on the new
    /// generation. Old snapshots are dropped when the last worker moves off
    /// them. Pairs with [`gnn_rtree::RTree::refreeze`] for cheap refreshes:
    /// mutate the arena tree, refreeze against the previous snapshot,
    /// publish the result — queries keep flowing throughout.
    pub fn publish(&self, snapshot: Arc<PackedRTree>) -> u64 {
        self.slot.publish(snapshot)
    }

    /// Generation of the currently published snapshot (starts at 1).
    pub fn generation(&self) -> u64 {
        self.slot.generation()
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<PackedRTree> {
        self.slot.load().0
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Enqueues a request, blocking while the queue is full. Returns a
    /// handle redeemable for the [`QueryResponse`].
    ///
    /// If every worker has died (each one panicked inside a query), the
    /// request cannot be executed; the returned handle then yields
    /// [`ServiceError::WorkerGone`] instead of panicking the caller.
    pub fn submit(&self, request: QueryRequest) -> ResponseHandle {
        let (reply, rx) = mpsc::channel();
        // `send` fails only when every worker (and thus the shared
        // receiver) is gone; dropping the job drops `reply`, which makes
        // the handle report `WorkerGone`. A `None` sender (shutdown already
        // initiated) drops `reply` immediately for the same clean error.
        if let Some(sender) = self.sender() {
            let _ = sender.send(Job {
                request,
                reply,
                submitted: Instant::now(),
            });
        }
        ResponseHandle { rx }
    }

    /// Non-blocking submit: fails with the request and
    /// [`ServiceError::QueueFull`] when the bounded queue is full — the
    /// backpressure signal an open-loop load generator counts as a drop —
    /// or [`ServiceError::WorkerGone`] when every worker has died.
    // The large `Err` is the point: the rejected request is handed back by
    // value so the caller can retry or drop it without ever cloning it.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(
        &self,
        request: QueryRequest,
    ) -> Result<ResponseHandle, (QueryRequest, ServiceError)> {
        let Some(sender) = self.sender() else {
            return Err((request, ServiceError::WorkerGone));
        };
        let (reply, rx) = mpsc::channel();
        let job = Job {
            request,
            reply,
            submitted: Instant::now(),
        };
        match sender.try_send(job) {
            Ok(()) => Ok(ResponseHandle { rx }),
            Err(TrySendError::Full(job)) => Err((job.request, ServiceError::QueueFull)),
            Err(TrySendError::Disconnected(job)) => Err((job.request, ServiceError::WorkerGone)),
        }
    }

    /// Convenience: submits `points` as a planner-routed query with the
    /// configured default `k` and aggregate.
    pub fn submit_points(&self, points: Vec<Point>) -> Result<ResponseHandle, QueryGroupError> {
        let group = QueryGroup::with_aggregate(points, self.config.default_aggregate)?;
        Ok(self.submit(QueryRequest::new(group, self.config.default_k)))
    }

    /// Enqueues a whole batch (blocking on backpressure), returning handles
    /// in submission order — so `handles[i]` answers `requests[i]` no
    /// matter which workers execute what, in which order.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = QueryRequest>,
    ) -> Vec<ResponseHandle> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Aggregated counters so far (cheap: atomic loads only — safe to poll
    /// from a metrics scraper while traffic runs).
    pub fn stats(&self) -> ServiceStats {
        let per_worker: Vec<WorkerSnapshot> = self
            .counters
            .iter()
            .enumerate()
            .map(|(w, c)| c.snapshot(w))
            .collect();
        let mut latency = LatencySnapshot::empty();
        for c in &self.counters {
            latency.merge(&c.latency.snapshot());
        }
        ServiceStats {
            generation: self.slot.generation(),
            queries_served: per_worker.iter().map(|w| w.queries).sum(),
            node_accesses: per_worker.iter().map(|w| w.node_accesses).sum(),
            io: per_worker.iter().map(|w| w.io).sum(),
            dist_computations: per_worker.iter().map(|w| w.dist_computations).sum(),
            per_worker,
            latency,
        }
    }

    /// Graceful shutdown: stops accepting new requests, lets the workers
    /// drain every queued request (their responses stay redeemable), joins
    /// the pool, and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop_and_join();
        self.stats()
    }

    /// Closes the request queue from `&self` without joining the workers:
    /// submissions from this point on fail cleanly
    /// ([`ServiceError::WorkerGone`] / a handle that reports it), while
    /// every request accepted **before** the close is still drained and
    /// answered exactly once. Callable from any thread — this is what lets
    /// a shutdown race in-flight `submit_batch` calls deterministically.
    /// Follow with [`Service::shutdown`] to join the pool and collect the
    /// final counters.
    pub fn initiate_shutdown(&self) {
        // Dropping the sender makes every worker's `recv` fail once the
        // queue is drained — the shutdown signal.
        drop(lock_unpoisoned(&self.tx).take());
    }

    fn sender(&self) -> Option<SyncSender<Job>> {
        // Clone-and-release: the bounded `send` may block on backpressure,
        // and holding the lock there would stall `initiate_shutdown` and
        // every other submitter.
        lock_unpoisoned(&self.tx).clone()
    }

    fn stop_and_join(&mut self) {
        self.initiate_shutdown();
        for handle in self.workers.drain(..) {
            // A panicked worker already delivered its error to the affected
            // handle (dropped reply channel → `WorkerGone`); joining must
            // not poison shutdown for the healthy workers.
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let running = lock_unpoisoned(&self.tx).is_some();
        f.debug_struct("Service")
            .field("workers", &self.config.workers)
            .field("queue_depth", &self.config.queue_depth)
            .field("generation", &self.slot.generation())
            .field("running", &running)
            .finish()
    }
}

/// The worker body: one cursor + scratch + planner per thread. The scratch
/// is reused for the thread's whole lifetime — steady-state queries
/// allocate only their response vectors — while the cursor is rebuilt (a
/// cheap constructor) whenever a newer snapshot generation is picked up
/// between queries.
fn worker_loop(
    slot: &SnapshotSlot,
    rx: &Mutex<Receiver<Job>>,
    planner: Planner,
    counters: &WorkerCounters,
) {
    let mut scratch = QueryScratch::new();
    let (mut tree, mut generation) = slot.load();
    // A job dequeued under a stale generation: carried across the reload so
    // it executes on the snapshot current at its dequeue, never dropped.
    let mut pending: Option<Job> = None;
    let mut warmed = false;
    loop {
        let cursor = tree.cursor();
        // Self-warm before serving: one canned query sizes the scratch's
        // core buffers, so a worker's very first real request does not pay
        // the cold-start allocations inside a caller's latency measurement.
        // The shared queue gives no per-worker routing, so no submitted
        // warm-up batch could guarantee reaching every worker — only the
        // worker itself can. Uncounted: it is not traffic. Once is enough:
        // the scratch survives snapshot swaps.
        if !warmed {
            warmed = true;
            if !tree.is_empty() {
                if let Ok(group) = QueryGroup::sum(vec![tree.root_mbr().center()]) {
                    let warm = QueryRequest::new(group, 1);
                    let _ = warm.execute_in(&planner, &cursor, &mut scratch);
                    cursor.reset();
                }
            }
        }
        // Serve on this snapshot until a newer generation is published.
        let handoff = loop {
            let job = match pending.take() {
                Some(job) => job,
                None => {
                    let received = {
                        let guard = lock_unpoisoned(rx);
                        guard.recv()
                    };
                    match received {
                        Ok(job) => job,
                        // Sender dropped and queue drained: shutdown.
                        Err(_) => return,
                    }
                }
            };
            // Swap check between queries only: one atomic load on the hot
            // path, never a lock; an in-flight query is never interrupted.
            // Checked after the dequeue, so every request runs on the
            // generation current when a worker picked it up — once
            // `publish` returns, no later-dequeued request sees the old
            // snapshot.
            if slot.generation() != generation {
                break Some(job);
            }
            let Job {
                request,
                reply,
                submitted,
            } = job;
            let exec0 = Instant::now();
            let (choice, neighbors, stats) = request.execute_in(&planner, &cursor, &mut scratch);
            let response = QueryResponse {
                choice,
                neighbors: neighbors.to_vec(),
                stats,
                generation,
            };
            // `busy` counts execution only; the latency histogram measures
            // submit → response, so queue wait under overload is visible.
            counters.record(&stats, exec0.elapsed(), submitted.elapsed());
            // The caller may have dropped its handle; that is not an error.
            let _ = reply.send(response);
        };
        pending = handoff;
        drop(cursor);
        let (next_tree, next_generation) = slot.load();
        tree = next_tree;
        generation = next_generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_core::{Algo, Mbm};
    use gnn_geom::PointId;
    use gnn_rtree::{LeafEntry, RTree, RTreeParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn snapshot(n: usize, seed: u64) -> Arc<PackedRTree> {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = RTree::bulk_load(
            RTreeParams::with_capacity(8),
            (0..n).map(|i| {
                LeafEntry::new(
                    PointId(i as u64),
                    Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0),
                )
            }),
        );
        Arc::new(tree.freeze())
    }

    fn random_group(n: usize, seed: u64) -> QueryGroup {
        let mut rng = StdRng::seed_from_u64(seed);
        QueryGroup::sum(
            (0..n)
                .map(|_| {
                    Point::new(
                        20.0 + rng.gen::<f64>() * 40.0,
                        20.0 + rng.gen::<f64>() * 40.0,
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_query_matches_direct_mbm() {
        let snap = snapshot(800, 1);
        let service = Service::start(Arc::clone(&snap), ServiceConfig::with_workers(2));
        let group = random_group(5, 2);
        let response = service
            .submit(QueryRequest::new(group.clone(), 4))
            .wait()
            .unwrap();
        let want = Mbm::best_first().k_gnn(&snap.cursor(), &group, 4);
        assert_eq!(response.neighbors, want.neighbors);
        assert_eq!(
            response.stats.data_tree.logical,
            want.stats.data_tree.logical
        );
    }

    #[test]
    fn batch_handles_come_back_in_submission_order() {
        let snap = snapshot(600, 3);
        let service = Service::start(snap, ServiceConfig::with_workers(4));
        let requests: Vec<QueryRequest> = (0..24)
            .map(|i| QueryRequest::new(random_group(4, 100 + i), 1 + (i as usize % 3)))
            .collect();
        let handles = service.submit_batch(requests.clone());
        for (req, handle) in requests.iter().zip(handles) {
            let r = handle.wait().unwrap();
            assert_eq!(r.neighbors.len(), req.k);
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 24);
        assert_eq!(stats.latency.count(), 24);
        assert!(stats.node_accesses > 0);
        assert_eq!(stats.per_worker.len(), 4);
        let sum: u64 = stats.per_worker.iter().map(|w| w.queries).sum();
        assert_eq!(sum, 24);
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let snap = snapshot(500, 4);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 1,
                queue_depth: 64,
                ..ServiceConfig::default()
            },
        );
        let handles =
            service.submit_batch((0..32).map(|i| QueryRequest::new(random_group(4, i), 2)));
        // Shut down immediately: every already-queued request must still be
        // answered.
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 32);
        for h in handles {
            assert_eq!(h.wait().unwrap().neighbors.len(), 2);
        }
    }

    #[test]
    fn submit_points_uses_configured_defaults() {
        let snap = snapshot(400, 5);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 1,
                default_k: 3,
                default_aggregate: Aggregate::Max,
                ..ServiceConfig::default()
            },
        );
        let pts = random_group(4, 9).points().to_vec();
        let r = service.submit_points(pts).unwrap().wait().unwrap();
        assert_eq!(r.neighbors.len(), 3);
        assert!(service.submit_points(Vec::new()).is_err());
    }

    #[test]
    fn explicit_algo_requests_report_their_choice() {
        let snap = snapshot(500, 6);
        let service = Service::start(snap, ServiceConfig::with_workers(2));
        for (algo, want) in [
            (Algo::Mqm, gnn_core::Choice::Mqm),
            (Algo::Spm, gnn_core::Choice::Spm),
            (Algo::Mbm, gnn_core::Choice::Mbm),
            (Algo::Auto, gnn_core::Choice::Mbm),
        ] {
            let r = service
                .submit(QueryRequest::with_algo(random_group(4, 7), 2, algo))
                .wait()
                .unwrap();
            assert_eq!(r.choice, want, "{algo:?}");
        }
    }

    #[test]
    fn poll_eventually_returns() {
        let snap = snapshot(300, 7);
        let service = Service::start(snap, ServiceConfig::with_workers(1));
        let handle = service.submit(QueryRequest::new(random_group(3, 8), 1));
        let mut spins = 0u64;
        let r = loop {
            if let Some(r) = handle.poll() {
                break r;
            }
            spins += 1;
            std::thread::yield_now();
            assert!(spins < 100_000_000, "query never completed");
        };
        assert_eq!(r.unwrap().neighbors.len(), 1);
    }

    #[test]
    fn empty_snapshot_serves_empty_results() {
        let snap = Arc::new(RTree::new(RTreeParams::default()).freeze());
        let service = Service::start(snap, ServiceConfig::with_workers(2));
        let r = service
            .submit(QueryRequest::new(random_group(3, 9), 5))
            .wait()
            .unwrap();
        assert!(r.neighbors.is_empty());
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 1);
    }

    #[test]
    fn publish_swaps_snapshots_between_queries() {
        let first = snapshot(500, 21);
        let second = snapshot(900, 22);
        let service = Service::start(Arc::clone(&first), ServiceConfig::with_workers(2));
        assert_eq!(service.generation(), 1);
        let group = random_group(5, 23);

        let r1 = service
            .submit(QueryRequest::new(group.clone(), 3))
            .wait()
            .unwrap();
        assert_eq!(r1.generation, 1);
        let want1 = Mbm::best_first().k_gnn(&first.cursor(), &group, 3);
        assert_eq!(r1.neighbors, want1.neighbors);

        let generation = service.publish(Arc::clone(&second));
        assert_eq!(generation, 2);
        assert_eq!(service.generation(), 2);
        assert!(Arc::ptr_eq(&service.snapshot(), &second));

        // Published before this submission: the request must be served on
        // the new snapshot and tagged with its generation.
        let r2 = service
            .submit(QueryRequest::new(group.clone(), 3))
            .wait()
            .unwrap();
        assert_eq!(r2.generation, 2);
        let want2 = Mbm::best_first().k_gnn(&second.cursor(), &group, 3);
        assert_eq!(r2.neighbors, want2.neighbors);

        let stats = service.shutdown();
        assert_eq!(stats.generation, 2);
        assert_eq!(stats.queries_served, 2);
    }

    #[test]
    fn repeated_publishes_serve_the_latest_snapshot() {
        let snaps: Vec<_> = (0..5)
            .map(|i| snapshot(300 + 50 * i, 30 + i as u64))
            .collect();
        let service = Service::start(Arc::clone(&snaps[0]), ServiceConfig::with_workers(3));
        let group = random_group(4, 31);
        for (i, snap) in snaps.iter().enumerate().skip(1) {
            assert_eq!(service.publish(Arc::clone(snap)), i as u64 + 1);
            let r = service
                .submit(QueryRequest::new(group.clone(), 2))
                .wait()
                .unwrap();
            assert_eq!(r.generation, i as u64 + 1, "publish {i}");
            let want = Mbm::best_first().k_gnn(&snap.cursor(), &group, 2);
            assert_eq!(r.neighbors, want.neighbors, "publish {i}");
        }
        let stats = service.shutdown();
        assert_eq!(stats.generation, 5);
    }

    #[test]
    fn initiate_shutdown_rejects_new_submissions_but_drains_accepted() {
        let snap = snapshot(400, 40);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 1,
                queue_depth: 64,
                ..ServiceConfig::default()
            },
        );
        let accepted =
            service.submit_batch((0..16).map(|i| QueryRequest::new(random_group(4, 50 + i), 2)));
        service.initiate_shutdown();
        // Post-close submissions fail cleanly on both entry points.
        let late = service.submit(QueryRequest::new(random_group(4, 99), 1));
        assert_eq!(late.wait(), Err(ServiceError::WorkerGone));
        match service.try_submit(QueryRequest::new(random_group(4, 98), 1)) {
            Err((_, ServiceError::WorkerGone)) => {}
            other => panic!("expected WorkerGone, got {:?}", other.map(|_| ())),
        }
        // Everything accepted before the close is answered exactly once.
        for h in accepted {
            assert_eq!(h.wait().unwrap().neighbors.len(), 2);
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 16);
    }

    #[test]
    fn shutdown_racing_submit_batch_drains_deterministically() {
        // Several threads pour batches in through the bounded queue while
        // another thread closes it at an arbitrary point. The invariant
        // that must hold for every interleaving: each submitted request
        // resolves to exactly one outcome — a response (iff it was accepted
        // before the close; the count must equal the workers' served
        // counter) or a clean `WorkerGone` error. Nothing hangs, nothing
        // is answered twice, nothing is silently dropped.
        let snap = snapshot(600, 60);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 2,
                queue_depth: 8, // far smaller than the load: submits block
                ..ServiceConfig::default()
            },
        );
        let outcomes: Vec<Result<QueryResponse, ServiceError>> = std::thread::scope(|s| {
            let mut submitters = Vec::new();
            for t in 0..3u64 {
                let service = &service;
                submitters.push(s.spawn(move || {
                    let requests =
                        (0..40).map(|i| QueryRequest::new(random_group(4, 1000 + t * 100 + i), 1));
                    let handles = service.submit_batch(requests);
                    handles
                        .into_iter()
                        .map(ResponseHandle::wait)
                        .collect::<Vec<_>>()
                }));
            }
            s.spawn(|| {
                // No sleep: yielding lands the close at a scheduler-chosen
                // point inside the submission storm.
                for _ in 0..50 {
                    std::thread::yield_now();
                }
                service.initiate_shutdown();
            });
            submitters
                .into_iter()
                .flat_map(|j| j.join().expect("submitter panicked"))
                .collect()
        });
        let stats = service.shutdown();
        assert_eq!(outcomes.len(), 120);
        let ok = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        assert_eq!(
            ok, stats.queries_served,
            "answered responses must equal requests the workers served"
        );
        assert_eq!(stats.latency.count(), stats.queries_served);
        for o in &outcomes {
            match o {
                Ok(r) => assert_eq!(r.neighbors.len(), 1),
                Err(e) => assert_eq!(*e, ServiceError::WorkerGone),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let snap = Arc::new(RTree::new(RTreeParams::default()).freeze());
        Service::start(
            snap,
            ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            },
        );
    }
}
