//! # gnn-service — spatially sharded, multi-threaded GNN query serving
//!
//! The paper's algorithms answer one query at a time; the north star is a
//! system that serves sustained multi-user traffic. This crate turns a
//! frozen snapshot — one [`PackedRTree`] or a spatially partitioned
//! [`ShardedSnapshot`] — into an embeddable query-serving engine:
//!
//! * the snapshot is **immutable and shared** (`Arc` — the storage layer is
//!   `Send + Sync` by construction, statically asserted in `gnn-rtree`) and
//!   lives in a **hot-swap slot**: [`Service::publish`] /
//!   [`Service::publish_sharded`] atomically install a new snapshot
//!   (typically a cheap per-shard [`gnn_rtree::ShardedTree::refreeze_all`])
//!   while queries keep flowing — workers pick the new generation up
//!   between queries with a single atomic check, in-flight queries finish
//!   on the snapshot they started on, and nobody ever blocks on the swap;
//! * requests are **routed by their query group's aggregate-MBR bound** to
//!   the pool of the shard that can serve them cheapest (the [`Router`]),
//!   one bounded queue and a fixed set of worker threads per shard — so a
//!   pool's workers keep their own shard's arenas hot in cache under
//!   spatially skewed traffic;
//! * every worker owns its own per-shard [`TreeCursor`]s, [`QueryScratch`]
//!   and [`Planner`], so the zero-allocation single-thread hot path of the
//!   packed engine becomes a zero-allocation **per-core** hot path — no
//!   shared mutable state is touched while a query runs. A query whose
//!   bound admits several shards is answered *exactly* by the worker
//!   itself through the cross-shard best-first merge
//!   ([`gnn_core::sharded`]); the response's
//!   [`ShardRouting`](gnn_core::ShardRouting) tag records the primary
//!   shard and how many shards were consulted;
//! * per-worker counters, per-shard routing counters (routed / served /
//!   single-shard hits) and a fixed-bucket response-latency histogram
//!   aggregate on demand into a [`ServiceStats`] snapshot, so the paper's
//!   node-access cost metric survives concurrency exactly.
//!
//! Determinism is the correctness anchor: a query's node accesses and
//! results depend only on the snapshot and the request (per-worker cursors
//! are unbuffered, so no cross-query cache state exists), which means the
//! same workload submitted through the service and run sequentially
//! produces identical ids, distances, and total node accesses — on any
//! worker count, in any completion order, sharded or not. The
//! workspace-level `service_determinism` and `sharded_equivalence` tests
//! pin this. Under live updates the anchor holds **per generation**: every
//! [`QueryResponse`] is tagged with the generation of the snapshot that
//! served it (pinned by the workspace-level `hot_swap` and
//! `refresh_driver` tests).
//!
//! For continuous refresh, [`RefreshDriver`] runs the full mutate →
//! per-shard refreeze → publish lifecycle on a background thread driven by
//! a dirty-fraction policy; see its docs.
//!
//! Submission goes through **one entry point**, [`Service::submit`], which
//! accepts anything convertible into a [`Submission`]: a prepared
//! [`QueryRequest`](gnn_core::QueryRequest), the [`Submission::group`]
//! builder (defaults filled from the [`ServiceConfig`]), or a
//! [`Submission::batch`] — a burst of correlated queries executed as
//! **shared-traversal passes**: each shard's sub-batch is sorted by
//! group-MBR Hilbert key and its upper-level pages are read once for the
//! whole sub-batch ([`gnn_core::batch`]), while results and per-query node
//! accesses stay bit-identical to single submissions. The batch ledger
//! (sub-batches executed, mean batch size, shared-read savings) surfaces
//! in [`ServiceStats`].
//!
//! ```
//! use gnn_core::{QueryGroup, QueryRequest};
//! use gnn_geom::{Point, PointId};
//! use gnn_rtree::{LeafEntry, RTree, RTreeParams};
//! use gnn_service::{Service, ServiceConfig, Submission};
//! use std::sync::Arc;
//!
//! let mut tree = RTree::new(RTreeParams::default());
//! for i in 0..100 {
//!     tree.insert(LeafEntry::new(PointId(i), Point::new(i as f64, 0.0)));
//! }
//! let snapshot = Arc::new(tree.freeze());
//! let service = Service::start(snapshot, ServiceConfig::with_workers(2));
//!
//! // One query: a plain request converts into a Submission.
//! let group = QueryGroup::sum(vec![Point::new(3.9, 0.0), Point::new(4.1, 0.0)]).unwrap();
//! let handle = service.submit(QueryRequest::new(group, 1)).unwrap();
//! assert_eq!(handle.wait().unwrap().neighbors[0].id, PointId(4));
//!
//! // A hotspot burst: one shared-traversal batch, responses in
//! // submission order.
//! let burst: Vec<QueryRequest> = (0..4)
//!     .map(|i| {
//!         let q = vec![Point::new(40.0 + i as f64, 0.0)];
//!         QueryRequest::new(QueryGroup::sum(q).unwrap(), 2)
//!     })
//!     .collect();
//! let responses = service.submit(Submission::batch(burst)).unwrap().wait_all().unwrap();
//! assert_eq!(responses.len(), 4);
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.queries_served, 5);
//! assert_eq!(stats.batches, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compat;
mod export;
mod fault;
mod refresh;
mod submission;

#[allow(deprecated)]
pub use compat::ServiceError;
pub use export::StatsLogger;
pub use fault::{silence_injected_panics, FaultLedger, FaultPlan};
pub use refresh::{
    DriverError, PublishRecord, RefreshDriver, RefreshOutcome, RefreshPolicy, RefreshStats, Update,
};
pub use submission::{
    BatchSubmission, GroupSubmission, QueryError, Submission, SubmitError, WaitError,
};
// The latency histogram moved into `gnn-telemetry` (it is mechanism, not
// serving policy); these re-exports keep every pre-existing
// `gnn_service::{LatencyHistogram, ...}` import compiling unchanged. The
// flight-recorder and stage types surface here too, since `ServiceStats`
// embeds them.
pub use gnn_telemetry::{
    FlightEvent, FlightEventKind, FlightLog, FlightRecorder, LatencyHistogram, LatencySnapshot,
    RingSnapshot, StageSnapshot, BUCKETS, SOURCE_CONTROL, SOURCE_DRIVER,
};

use gnn_core::batch::{execute_batch_hooked, BatchAccounting};
use gnn_core::sharded::primary_shard;
use gnn_core::{
    Aggregate, NetworkBackend, Planner, QueryGroup, QueryRequest, QueryResponse, Target,
};
use gnn_core::{QueryScratch, QueryStats, QueryTrace, ShardRouting};
use gnn_rtree::{PackedRTree, RTree, RTreeParams, ShardedSnapshot, TreeCursor};
use gnn_telemetry::StageHistograms;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use submission::SubmissionKind;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1). A single-shard service puts all of them in
    /// one pool; [`Service::start_sharded`] distributes them near-evenly
    /// across the per-shard pools in shard order, giving every pool at
    /// least one worker (so the effective total is
    /// `max(workers, shard_count)`).
    pub workers: usize,
    /// Bounded per-pool request-queue depth (≥ 1): [`Service::submit`]
    /// blocks and [`Service::try_submit`] fails once this many requests are
    /// pending on the routed shard's queue.
    pub queue_depth: usize,
    /// `k` used by the [`Service::submit_points`] convenience entry.
    pub default_k: usize,
    /// Aggregate used by [`Service::submit_points`].
    pub default_aggregate: Aggregate,
    /// The planner each worker routes [`gnn_core::Algo::Auto`] requests
    /// through.
    pub planner: Planner,
    /// Deterministic fault injection for tests and resilience benchmarks
    /// (see [`FaultPlan`]). The default injects nothing and costs one
    /// emptiness check per query.
    pub fault_plan: FaultPlan,
    /// Flight-recorder ring capacity **per worker** (plus one control ring
    /// for publish events and one for the refresh driver). Each retained
    /// event costs 24 bytes; recording is a handful of atomic stores on
    /// the worker's own ring. `0` disables the flight recorder entirely
    /// (recording reduces to one branch) — stage histograms and the
    /// latency histogram stay on regardless, they are the service's basic
    /// metrics surface.
    pub flight_recorder: usize,
}

impl Default for ServiceConfig {
    /// One worker per available core, queue depth 1024, `k = 8`, SUM.
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            queue_depth: 1024,
            default_k: 8,
            default_aggregate: Aggregate::Sum,
            planner: Planner::new(),
            fault_plan: FaultPlan::default(),
            flight_recorder: 256,
        }
    }
}

impl ServiceConfig {
    /// The default configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

/// A pending submission's responses: one per submitted request.
///
/// A single-request submission is redeemed with [`ResponseHandle::wait`];
/// a batch with [`ResponseHandle::wait_all`] (responses **in submission
/// order** no matter which pools, workers, or shared passes executed them)
/// or [`ResponseHandle::wait_each`] (per-request outcomes, so one faulted
/// query does not hide the rest). [`ResponseHandle::poll`] and
/// [`ResponseHandle::wait_timeout`] / [`ResponseHandle::wait_deadline`]
/// are the non-blocking / bounded-blocking variants.
///
/// Every accepted request resolves to exactly one outcome — a response or
/// a typed [`QueryError`] (panic, deadline shed) — so redeeming a handle
/// never hangs on a fault.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: Receiver<(u32, Result<QueryResponse, QueryError>)>,
    /// Outcomes received so far, indexed by submission position.
    slots: Vec<Option<Result<QueryResponse, QueryError>>>,
    received: usize,
}

impl ResponseHandle {
    fn new(
        rx: Receiver<(u32, Result<QueryResponse, QueryError>)>,
        expected: usize,
    ) -> ResponseHandle {
        ResponseHandle {
            rx,
            slots: (0..expected).map(|_| None).collect(),
            received: 0,
        }
    }

    /// A handle whose submission was never enqueued: every wait reports
    /// [`SubmitError::WorkerDied`] (legacy shim semantics).
    fn dead() -> ResponseHandle {
        let (_tx, rx) = mpsc::channel();
        ResponseHandle::new(rx, 1)
    }

    /// Number of responses this handle will yield (1 for single
    /// submissions, the batch length for batches, 0 for an empty batch).
    pub fn expected(&self) -> usize {
        self.slots.len()
    }

    fn store(&mut self, index: u32, outcome: Result<QueryResponse, QueryError>) {
        let slot = &mut self.slots[index as usize];
        debug_assert!(slot.is_none(), "duplicate response for index {index}");
        if slot.is_none() {
            self.received += 1;
        }
        *slot = Some(outcome);
    }

    /// The first typed per-query error in submission order, or
    /// [`SubmitError::WorkerDied`] when there is none (a reply channel
    /// that died still owing responses).
    fn first_failure(&self) -> SubmitError {
        self.slots
            .iter()
            .find_map(|slot| match slot {
                Some(Err(e)) => Some(SubmitError::Query(*e)),
                _ => None,
            })
            .unwrap_or(SubmitError::WorkerDied)
    }

    /// Takes the first-submitted request's outcome once every expected
    /// response has arrived.
    fn take_first(&mut self) -> Result<QueryResponse, SubmitError> {
        match self.slots.first_mut().and_then(Option::take) {
            Some(Ok(response)) => Ok(response),
            Some(Err(e)) => Err(SubmitError::Query(e)),
            None => Err(SubmitError::WorkerDied),
        }
    }

    /// Blocks until the **first-submitted** request completes and returns
    /// its response. The natural redemption for single-request submissions;
    /// for batches it discards all other responses — use
    /// [`ResponseHandle::wait_all`] there. Fails with
    /// [`SubmitError::Query`] when the request was answered with a typed
    /// per-query error (panic, deadline shed), or
    /// [`SubmitError::WorkerDied`] when the serving worker disappeared
    /// before answering (or the handle expects no responses at all).
    pub fn wait(mut self) -> Result<QueryResponse, SubmitError> {
        if self.slots.is_empty() {
            return Err(SubmitError::WorkerDied);
        }
        while self.slots[0].is_none() {
            let (index, outcome) = self.rx.recv().map_err(|_| SubmitError::WorkerDied)?;
            self.store(index, outcome);
        }
        match self.slots.swap_remove(0).expect("slot 0 filled") {
            Ok(response) => Ok(response),
            Err(e) => Err(SubmitError::Query(e)),
        }
    }

    /// Blocks until every submitted request resolves and returns the
    /// responses in submission order (`out[i]` answers request `i`). An
    /// empty batch yields an empty vec.
    ///
    /// If **any** request failed — a typed [`QueryError`] or a dead reply
    /// channel — the successful responses are **not** discarded: the
    /// [`WaitError`] hands them back in `received` (indexed by submission
    /// order) alongside the first failure. Use
    /// [`ResponseHandle::wait_each`] to get each request's own outcome
    /// instead.
    pub fn wait_all(mut self) -> Result<Vec<QueryResponse>, WaitError> {
        let mut channel_died = false;
        while self.received < self.slots.len() {
            match self.rx.recv() {
                Ok((index, outcome)) => self.store(index, outcome),
                Err(_) => {
                    channel_died = true;
                    break;
                }
            }
        }
        let typed = self.slots.iter().find_map(|slot| match slot {
            Some(Err(e)) => Some(SubmitError::Query(*e)),
            _ => None,
        });
        let error = match typed {
            Some(e) => Some(e),
            None if channel_died => Some(SubmitError::WorkerDied),
            None => None,
        };
        match error {
            None => Ok(self
                .slots
                .into_iter()
                .map(|slot| match slot.expect("all slots filled") {
                    Ok(response) => response,
                    Err(_) => unreachable!("typed errors handled above"),
                })
                .collect()),
            Some(error) => Err(WaitError {
                received: self
                    .slots
                    .into_iter()
                    .map(|slot| slot.and_then(Result::ok))
                    .collect(),
                error,
            }),
        }
    }

    /// Blocks until every submitted request resolves and returns **each**
    /// request's outcome in submission order: `Ok(response)`,
    /// [`SubmitError::Query`] for a typed per-query error, or
    /// [`SubmitError::WorkerDied`] for a request whose reply channel died
    /// unanswered. The redemption to use when partial results are the
    /// point — one panicked or shed query never hides the others.
    pub fn wait_each(mut self) -> Vec<Result<QueryResponse, SubmitError>> {
        while self.received < self.slots.len() {
            match self.rx.recv() {
                Ok((index, outcome)) => self.store(index, outcome),
                Err(_) => break,
            }
        }
        self.slots
            .into_iter()
            .map(|slot| match slot {
                Some(Ok(response)) => Ok(response),
                Some(Err(e)) => Err(SubmitError::Query(e)),
                None => Err(SubmitError::WorkerDied),
            })
            .collect()
    }

    /// Bounded-blocking wait: like [`ResponseHandle::poll`], but blocks up
    /// to `timeout` for the outstanding responses. `None` when the timeout
    /// expires first — the handle stays usable and everything that did
    /// arrive stays buffered, so callers can keep extending the wait.
    pub fn wait_timeout(
        &mut self,
        timeout: Duration,
    ) -> Option<Result<QueryResponse, SubmitError>> {
        let deadline = Instant::now()
            .checked_add(timeout)
            // A timeout beyond the representable range is an unbounded
            // wait for any practical purpose; clamp to a year out.
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(31_536_000));
        self.wait_deadline(deadline)
    }

    /// Bounded-blocking wait against an absolute deadline: `Some` with the
    /// first-submitted request's outcome once **all** expected responses
    /// have resolved, `None` when `deadline` passes first (arrived
    /// responses stay buffered; the handle stays usable),
    /// `Some(Err(..))` when the reply channel died. The caller-side
    /// companion of [`QueryRequest::deadline`]: the worker bounds queue
    /// staleness, this bounds the caller's wait.
    pub fn wait_deadline(
        &mut self,
        deadline: Instant,
    ) -> Option<Result<QueryResponse, SubmitError>> {
        loop {
            if self.received == self.slots.len() {
                return Some(self.take_first());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.rx.recv_timeout(remaining) {
                Ok((index, outcome)) => self.store(index, outcome),
                Err(mpsc::RecvTimeoutError::Timeout) => return None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Some(Err(self.first_failure()))
                }
            }
        }
    }

    /// Non-blocking poll: `Some(Ok(..))` with the first-submitted request's
    /// response once **all** expected responses have resolved, `None` while
    /// any is still in flight, `Some(Err(..))` on a typed per-query error
    /// or a dead worker. Arrived responses are buffered across calls.
    pub fn poll(&mut self) -> Option<Result<QueryResponse, SubmitError>> {
        loop {
            if self.received == self.slots.len() {
                return Some(self.take_first());
            }
            match self.rx.try_recv() {
                Ok((index, outcome)) => self.store(index, outcome),
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => return Some(Err(self.first_failure())),
            }
        }
    }
}

/// Locks a mutex, recovering from poisoning: a worker that panicked inside
/// a query may have died holding a lock, but every structure guarded here
/// (the snapshot slot, a dequeue end, the sender table) stays sound — the
/// panic cannot have left it mid-mutation. One policy, one place.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The hot-swap publication slot: the current sharded snapshot plus its
/// generation.
///
/// Hand-rolled `ArcSwap` equivalent with no dependencies: publishers
/// replace the `Arc` under a mutex and bump the generation; workers watch
/// the generation with one atomic load between queries (the hot path never
/// locks) and reload the `Arc` — briefly taking the uncontended lock — only
/// when it changed. Readers of an old generation keep their `Arc` alive, so
/// in-flight queries always finish on the snapshot they started on and old
/// snapshots are freed exactly when the last worker moves off them. An
/// incremental refresh shares the `Arc` of every untouched *shard* between
/// consecutive generations, so a publish costs memory only for the shards
/// that actually changed.
struct SnapshotSlot {
    current: Mutex<Arc<ShardedSnapshot>>,
    generation: AtomicU64,
}

impl SnapshotSlot {
    /// Wraps the initial snapshot as generation 1.
    fn new(initial: Arc<ShardedSnapshot>) -> Self {
        SnapshotSlot {
            current: Mutex::new(initial),
            generation: AtomicU64::new(1),
        }
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The current `(snapshot, generation)` pair, read consistently (the
    /// generation is only ever bumped under the same lock).
    fn load(&self) -> (Arc<ShardedSnapshot>, u64) {
        let guard = lock_unpoisoned(&self.current);
        let generation = self.generation.load(Ordering::Acquire);
        (Arc::clone(&guard), generation)
    }

    fn publish(&self, snapshot: Arc<ShardedSnapshot>) -> u64 {
        let mut guard = lock_unpoisoned(&self.current);
        *guard = snapshot;
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// One unit of work on a shard queue: a single request, or one shard's
/// sub-batch of a batch submission. Either occupies **one** queue slot
/// (`queue_depth` counts jobs, not queries).
enum Work {
    /// One query, answered with index 0.
    Single(QueryRequest),
    /// A shard-local sub-batch, executed as one shared-traversal pass
    /// ([`gnn_core::batch::execute_batch_in`]). `indices[i]` is the
    /// submission-order position request `i` answers to on the reply
    /// channel.
    Batch {
        requests: Vec<QueryRequest>,
        indices: Vec<u32>,
    },
}

/// A queued job plus its reply channel.
struct Job {
    work: Work,
    reply: mpsc::Sender<(u32, Result<QueryResponse, QueryError>)>,
    /// When the request entered the queue; response latency is measured
    /// from here, so time spent waiting behind other requests is visible
    /// in the histogram (the open-loop contract).
    submitted: Instant,
}

/// Shared per-worker counters (written lock-free by the worker, read by
/// [`Service::stats`]).
#[derive(Debug)]
struct WorkerCounters {
    queries: AtomicU64,
    node_accesses: AtomicU64,
    io: AtomicU64,
    dist_computations: AtomicU64,
    busy_nanos: AtomicU64,
    single_shard_hits: AtomicU64,
    shards_consulted: AtomicU64,
    batches: AtomicU64,
    batch_queries: AtomicU64,
    batch_unique_pages: AtomicU64,
    batch_sequential_pages: AtomicU64,
    panics: AtomicU64,
    respawns: AtomicU64,
    shed: AtomicU64,
    deadline_missed: AtomicU64,
    latency: LatencyHistogram,
    /// Per-stage decomposition of the end-to-end latency (queue wait /
    /// execution / reply, plus the shed-wait distribution).
    stages: StageHistograms,
    /// This worker's flight-recorder ring (the worker is the single
    /// producer; [`Service::stats`] snapshots it).
    flight: FlightRecorder,
}

impl WorkerCounters {
    fn new(worker: usize, flight_capacity: usize, epoch: Instant) -> Self {
        WorkerCounters {
            queries: AtomicU64::new(0),
            node_accesses: AtomicU64::new(0),
            io: AtomicU64::new(0),
            dist_computations: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            single_shard_hits: AtomicU64::new(0),
            shards_consulted: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_queries: AtomicU64::new(0),
            batch_unique_pages: AtomicU64::new(0),
            batch_sequential_pages: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            stages: StageHistograms::new(),
            flight: FlightRecorder::new(worker as u32, flight_capacity, epoch),
        }
    }

    fn fault_ledger(&self) -> FaultLedger {
        FaultLedger {
            panics: self.panics.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
        }
    }

    /// Records the batch-level ledger of one executed sub-batch (per-query
    /// counters go through [`WorkerCounters::record`] as usual — batch
    /// execution never changes per-query accounting).
    fn record_batch(&self, accounting: &BatchAccounting) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_queries
            .fetch_add(accounting.queries as u64, Ordering::Relaxed);
        self.batch_unique_pages
            .fetch_add(accounting.unique_pages, Ordering::Relaxed);
        self.batch_sequential_pages
            .fetch_add(accounting.sequential_pages, Ordering::Relaxed);
    }

    /// Records one served query: cost counters, the end-to-end latency
    /// sample, and its queue-wait / execution stage samples (the reply
    /// stage is recorded separately, around the actual send).
    fn record(
        &self,
        stats: &QueryStats,
        routing: ShardRouting,
        queue_wait: Duration,
        execution: Duration,
        response: Duration,
    ) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.node_accesses
            .fetch_add(stats.data_tree.logical, Ordering::Relaxed);
        self.io.fetch_add(stats.data_tree.io, Ordering::Relaxed);
        self.dist_computations
            .fetch_add(stats.dist_computations, Ordering::Relaxed);
        self.busy_nanos.fetch_add(
            u64::try_from(execution.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        if routing.consulted <= 1 {
            self.single_shard_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.shards_consulted
            .fetch_add(u64::from(routing.consulted), Ordering::Relaxed);
        self.latency.record(response);
        self.stages.queue_wait.record(queue_wait);
        self.stages.execution.record(execution);
    }

    /// Records a shed request: the fault counter plus its shed-wait
    /// stage sample and flight-recorder event.
    fn record_shed(&self, waited: Duration) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.stages.shed_wait.record(waited);
        self.flight
            .record(FlightEventKind::Shed, duration_nanos(waited));
    }

    fn snapshot(&self, worker: usize, shard: usize) -> WorkerSnapshot {
        WorkerSnapshot {
            worker,
            shard,
            queries: self.queries.load(Ordering::Relaxed),
            node_accesses: self.node_accesses.load(Ordering::Relaxed),
            io: self.io.load(Ordering::Relaxed),
            dist_computations: self.dist_computations.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time counters of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Worker index (0-based, global across pools).
    pub worker: usize,
    /// The shard pool this worker serves.
    pub shard: usize,
    /// Queries served by this worker.
    pub queries: u64,
    /// Logical node accesses performed (the paper's NA metric).
    pub node_accesses: u64,
    /// Simulated I/O (equals `node_accesses` — worker cursors are
    /// unbuffered so per-query accounting stays deterministic).
    pub io: u64,
    /// Distance evaluations (CPU proxy).
    pub dist_computations: u64,
    /// Total wall time spent inside query execution (queue wait excluded —
    /// that shows up in the latency histogram instead).
    pub busy: Duration,
}

/// Point-in-time routing/serving counters of one shard pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Requests the router queued on this pool.
    pub routed: u64,
    /// Queries served by this pool's workers.
    pub queries: u64,
    /// Served queries that consulted only this pool's own shard (the
    /// routing-hit metric: higher is better for spatially local traffic).
    pub single_shard_hits: u64,
    /// Total shards consulted across this pool's served queries
    /// (`/ queries` = average fan-out of the cross-shard merge).
    pub shards_consulted: u64,
    /// Response-latency histogram of this pool alone (submit → response,
    /// same contract as [`ServiceStats::latency`]) — per-shard tail
    /// percentiles expose a hot shard the merged histogram averages away.
    pub latency: LatencySnapshot,
}

/// Aggregated service counters: per-worker and per-shard snapshots, their
/// totals, and the merged latency histogram.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// The snapshot generation currently published (1 for the snapshot the
    /// service started on; each publish bumps it). Individual responses
    /// carry the generation that actually served them in
    /// [`QueryResponse::generation`], which is how determinism stays
    /// pinnable per generation under hot swaps.
    pub generation: u64,
    /// Total queries served.
    pub queries_served: u64,
    /// Total logical node accesses — comparable 1:1 with a sequential run
    /// of the same workload on the same snapshot.
    pub node_accesses: u64,
    /// Total simulated I/O.
    pub io: u64,
    /// Total distance evaluations.
    pub dist_computations: u64,
    /// Served queries that needed only their primary shard.
    pub single_shard_hits: u64,
    /// Shared-traversal sub-batches executed (each per-shard sub-batch of
    /// a batch submission counts once).
    pub batches: u64,
    /// Queries served through batch execution (`/ batches` = mean batch
    /// size; also in [`ServiceStats::mean_batch_size`]).
    pub batch_queries: u64,
    /// Distinct pages touched across all executed batches — the physical
    /// reads the shared traversals paid.
    pub batch_unique_pages: u64,
    /// Sum of per-query node accesses across all batched queries — what
    /// those same queries cost executed one by one. The gap to
    /// `batch_unique_pages` is the shared-read saving
    /// ([`ServiceStats::shared_read_savings`]).
    pub batch_sequential_pages: u64,
    /// Fault ledger: panics, respawns, shed requests, and missed deadlines
    /// across all workers (see [`FaultLedger`]). `faults.panics` counts
    /// queries answered with [`QueryError::WorkerPanicked`] — they are
    /// **not** in `queries_served`.
    pub faults: FaultLedger,
    /// Per-worker breakdown (length = total workers across pools).
    pub per_worker: Vec<WorkerSnapshot>,
    /// Per-shard routing/serving breakdown (length = shard count).
    pub per_shard: Vec<ShardStats>,
    /// Merged response-latency histogram (`p50()`/`p95()`/`p99()`).
    /// Samples measure **submit → response** — queueing plus execution —
    /// so an overloaded service shows its backlog in the tail percentiles
    /// (the open-loop measurement contract).
    pub latency: LatencySnapshot,
    /// Stage decomposition of the same served traffic: queue-wait,
    /// execution, and reply histograms (their counts all equal
    /// `queries_served`), plus the shed-wait histogram of requests
    /// answered [`QueryError::DeadlineExceeded`] at dequeue.
    pub stages: StageSnapshot,
    /// Merged flight-recorder timeline: every worker's ring plus the
    /// control ring (publishes) and the refresh driver's ring, sorted by
    /// timestamp, with the exact count of events dropped to ring overflow.
    pub flight: FlightLog,
    /// The SIMD dispatch level the distance kernels ran at, as a static
    /// label: `"avx2+fma"`, `"sse2"` or `"scalar"`
    /// ([`gnn_geom::SimdLevel::label`]). Process-wide and constant for the
    /// service's lifetime; recorded so exported metrics and bench JSON
    /// identify the ISA a number was measured on, next to
    /// `host_parallelism`.
    pub simd_level: &'static str,
}

impl ServiceStats {
    /// Fraction of served queries answered by a single shard (1.0 for an
    /// unsharded service; `None` before any query completed).
    pub fn single_shard_fraction(&self) -> Option<f64> {
        (self.queries_served > 0)
            .then(|| self.single_shard_hits as f64 / self.queries_served as f64)
    }

    /// Mean queries per executed sub-batch (`None` before any batch ran).
    pub fn mean_batch_size(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.batch_queries as f64 / self.batches as f64)
    }

    /// Fraction of page reads the shared traversals saved over per-query
    /// execution: `1 - unique / sequential` across all batches (`None`
    /// before any batched query ran).
    pub fn shared_read_savings(&self) -> Option<f64> {
        (self.batch_sequential_pages > 0)
            .then(|| 1.0 - self.batch_unique_pages as f64 / self.batch_sequential_pages as f64)
    }
}

/// One shard's worker pool: its queue is entry `shard` of the service-wide
/// sender table; workers share the matching receiver.
struct Pool {
    workers: Vec<JoinHandle<()>>,
    counters: Vec<Arc<WorkerCounters>>,
    /// Requests the router queued on this pool.
    routed: AtomicU64,
}

/// The serving engine: a hot-swappable sharded snapshot slot, one bounded
/// queue + worker pool per shard, and an aggregate-MBR router. See the
/// crate docs for the design.
pub struct Service {
    /// Per-shard senders; `None` once shutdown has been initiated — behind
    /// one mutex so [`Service::initiate_shutdown`] can close every queue
    /// atomically from `&self` (and so a publish can be serialized against
    /// the close, see [`Service::try_publish_sharded`]).
    senders: Mutex<Option<Vec<SyncSender<Job>>>>,
    slot: Arc<SnapshotSlot>,
    pools: Vec<Pool>,
    config: ServiceConfig,
    /// Zero point of every flight-recorder timestamp (shared by all rings,
    /// so the merged timeline is directly comparable across workers).
    epoch: Instant,
    /// Control-plane flight ring: [`FlightEventKind::Published`] events
    /// from the publish entry points (payload = new generation).
    control: FlightRecorder,
    /// Refresh-driver flight ring (`RefreezeStart` / `RefreezeEnd`),
    /// written by the driver thread through [`Service::driver_flight`].
    driver_flight: FlightRecorder,
    /// When present, this service serves **network-distance** GNN: every
    /// request (single or batch) executes on [`Target::Network`] against
    /// this backend instead of the Euclidean snapshot slot. Set by
    /// [`Service::start_network`]; `None` for Euclidean services.
    network: Option<Arc<dyn NetworkBackend>>,
}

impl Service {
    /// Spins up an **unsharded** service: one pool of `config.workers`
    /// workers over one snapshot (wrapped as a single-shard
    /// [`ShardedSnapshot`] without rebuilding — node accesses are exactly
    /// those of the snapshot itself).
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` or `config.queue_depth` is zero.
    pub fn start(snapshot: Arc<PackedRTree>, config: ServiceConfig) -> Service {
        Self::start_sharded(Arc::new(ShardedSnapshot::single(snapshot)), config)
    }

    /// Spins up a **sharded** service: one bounded queue and worker pool
    /// per shard, requests routed by query aggregate-MBR bound.
    /// `config.workers` threads are distributed near-evenly across the
    /// pools in shard order (the first `workers % shards` pools get one
    /// extra); every pool gets at least one.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` or `config.queue_depth` is zero.
    pub fn start_sharded(snapshot: Arc<ShardedSnapshot>, config: ServiceConfig) -> Service {
        Self::start_inner(snapshot, config, None)
    }

    /// Spins up a **network-distance** service: one pool of
    /// `config.workers` workers serving GNN queries on a road-network
    /// backend (typically a `gnn_network::NetworkSnapshot` wrapped via its
    /// `into_backend()`). Every request — single or batch — executes on
    /// [`Target::Network`], through the exact same submission surface,
    /// worker supervision, deadline shedding, and telemetry as the
    /// Euclidean services; each worker keeps the backend's reusable state
    /// (e.g. `NetworkScratch`) inside its own [`QueryScratch`], warmed at
    /// spawn via [`NetworkBackend::warm`]. Results are bit-identical to a
    /// sequential run of the same workload against the same backend, on
    /// any worker count.
    ///
    /// The Euclidean snapshot slot holds an empty placeholder: `publish`
    /// and the [`RefreshDriver`] are Euclidean-refresh machinery and do not
    /// apply to a network service.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` or `config.queue_depth` is zero.
    pub fn start_network(backend: Arc<dyn NetworkBackend>, config: ServiceConfig) -> Service {
        let placeholder = Arc::new(ShardedSnapshot::single(Arc::new(
            RTree::new(RTreeParams::default()).freeze(),
        )));
        Self::start_inner(placeholder, config, Some(backend))
    }

    fn start_inner(
        snapshot: Arc<ShardedSnapshot>,
        config: ServiceConfig,
        network: Option<Arc<dyn NetworkBackend>>,
    ) -> Service {
        assert!(config.workers > 0, "service needs at least one worker");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let shards = snapshot.shard_count();
        let slot = Arc::new(SnapshotSlot::new(snapshot));
        // One epoch for every flight ring: merged timelines compare
        // timestamps from different workers directly.
        let epoch = Instant::now();
        let mut senders = Vec::with_capacity(shards);
        let mut pools = Vec::with_capacity(shards);
        let mut worker_id = 0usize;
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Job>(config.queue_depth);
            senders.push(tx);
            // std's Receiver is single-consumer; the pool shares it behind
            // a mutex. The lock is held only for the dequeue itself, never
            // while a query runs.
            let rx = Arc::new(Mutex::new(rx));
            let pool_workers =
                (config.workers / shards + usize::from(shard < config.workers % shards)).max(1);
            let mut workers = Vec::with_capacity(pool_workers);
            let mut counters = Vec::with_capacity(pool_workers);
            for _ in 0..pool_workers {
                let counter = Arc::new(WorkerCounters::new(
                    worker_id,
                    config.flight_recorder,
                    epoch,
                ));
                counters.push(Arc::clone(&counter));
                let slot = Arc::clone(&slot);
                let rx = Arc::clone(&rx);
                let planner = config.planner;
                let fault = config.fault_plan.clone();
                let network = network.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("gnn-worker-{shard}-{worker_id}"))
                        .spawn(move || {
                            worker_loop(
                                &slot,
                                &rx,
                                planner,
                                &counter,
                                worker_id,
                                &fault,
                                network.as_deref(),
                            )
                        })
                        .expect("spawn worker thread"),
                );
                worker_id += 1;
            }
            pools.push(Pool {
                workers,
                counters,
                routed: AtomicU64::new(0),
            });
        }
        let control = FlightRecorder::new(SOURCE_CONTROL, config.flight_recorder, epoch);
        let driver_flight = FlightRecorder::new(SOURCE_DRIVER, config.flight_recorder, epoch);
        Service {
            senders: Mutex::new(Some(senders)),
            slot,
            pools,
            config,
            epoch,
            control,
            driver_flight,
            network,
        }
    }

    /// Atomically publishes a new snapshot on a **single-shard** service
    /// and returns its generation.
    ///
    /// Workers pick the new snapshot up **between** queries: the in-flight
    /// query of every worker finishes on the snapshot it started on, no
    /// worker ever blocks on the swap (the hot path checks one atomic), and
    /// any request dequeued after `publish` returns is served on the new
    /// generation. Old snapshots are dropped when the last worker moves off
    /// them. Pairs with [`gnn_rtree::RTree::refreeze`] for cheap refreshes.
    ///
    /// # Panics
    ///
    /// Panics on a sharded service — publish a matching
    /// [`ShardedSnapshot`] through [`Service::publish_sharded`] instead.
    pub fn publish(&self, snapshot: Arc<PackedRTree>) -> u64 {
        assert_eq!(
            self.pools.len(),
            1,
            "publish() is the single-shard entry; use publish_sharded()"
        );
        let generation = self
            .slot
            .publish(Arc::new(ShardedSnapshot::single(snapshot)));
        self.control.record(FlightEventKind::Published, generation);
        generation
    }

    /// Atomically publishes a new sharded snapshot (same swap semantics as
    /// [`Service::publish`]) and returns its generation. An incremental
    /// refresh ([`gnn_rtree::ShardedTree::refreeze_all`]) shares the `Arc`
    /// of every untouched shard with the previous generation, so the swap
    /// costs memory only for the shards that changed.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's shard count differs from the service's
    /// pool count (the router's shard↔pool mapping is fixed at start).
    pub fn publish_sharded(&self, snapshot: Arc<ShardedSnapshot>) -> u64 {
        assert_eq!(
            snapshot.shard_count(),
            self.pools.len(),
            "published snapshot must keep the shard count"
        );
        let generation = self.slot.publish(snapshot);
        self.control.record(FlightEventKind::Published, generation);
        generation
    }

    /// Like [`Service::publish_sharded`], but refuses (returns `None`)
    /// once [`Service::initiate_shutdown`] has closed the queues — the
    /// check and the publish are serialized against the close, so after
    /// `initiate_shutdown` returns, the generation can never advance
    /// again. This is the entry the [`RefreshDriver`] uses: a refresh that
    /// races shutdown is dropped instead of published into a draining
    /// service.
    pub fn try_publish_sharded(&self, snapshot: Arc<ShardedSnapshot>) -> Option<u64> {
        assert_eq!(
            snapshot.shard_count(),
            self.pools.len(),
            "published snapshot must keep the shard count"
        );
        let guard = lock_unpoisoned(&self.senders);
        guard.as_ref()?;
        let generation = self.slot.publish(snapshot);
        self.control.record(FlightEventKind::Published, generation);
        Some(generation)
    }

    /// The instant every flight-recorder timestamp is measured from
    /// ([`FlightEvent::ts_nanos`] is nanoseconds since this epoch).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The refresh driver's flight ring (the driver thread is its single
    /// producer; it shares the service epoch and shows up in the merged
    /// [`ServiceStats::flight`] timeline as [`SOURCE_DRIVER`]).
    pub(crate) fn driver_flight(&self) -> &FlightRecorder {
        &self.driver_flight
    }

    /// Generation of the currently published snapshot (starts at 1).
    pub fn generation(&self) -> u64 {
        self.slot.generation()
    }

    /// The currently published snapshot of a **single-shard** service.
    ///
    /// # Panics
    ///
    /// Panics on a sharded service — use [`Service::sharded_snapshot`].
    pub fn snapshot(&self) -> Arc<PackedRTree> {
        assert_eq!(
            self.pools.len(),
            1,
            "snapshot() is the single-shard entry; use sharded_snapshot()"
        );
        Arc::clone(self.slot.load().0.shard(0))
    }

    /// The currently published sharded snapshot.
    pub fn sharded_snapshot(&self) -> Arc<ShardedSnapshot> {
        self.slot.load().0
    }

    /// Number of shard pools (fixed at start).
    pub fn shard_count(&self) -> usize {
        self.pools.len()
    }

    /// The network backend this service executes on, when started through
    /// [`Service::start_network`] (`None` for Euclidean services). Handy
    /// for running the sequential reference of a served workload against
    /// the exact same backend.
    pub fn network_backend(&self) -> Option<&Arc<dyn NetworkBackend>> {
        self.network.as_ref()
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The pool this request would be queued on: its
    /// [`QueryRequest::shard_hint`] when valid, otherwise the shard with
    /// the smallest aggregate-MBR lower bound for the group (the
    /// [`Router`] rule — exposed for tests and load generators).
    pub fn route(&self, request: &QueryRequest) -> usize {
        if self.pools.len() == 1 {
            return 0;
        }
        if let Some(hint) = request.shard_hint {
            if (hint as usize) < self.pools.len() {
                return hint as usize;
            }
        }
        // Known trade-off: routing loads the slot (a brief, usually
        // uncontended mutex — the same pattern the sender table already
        // pays per submit) and the worker recomputes the full shard order
        // for the merge anyway. A lock-free routing-directory cache keyed
        // on the generation atomic would shave both; measure first —
        // callers that care today pre-route with `shard_hint`.
        primary_shard(&request.group, &self.slot.load().0) as usize
    }

    /// The one submission entry point: accepts anything convertible into a
    /// [`Submission`] — a plain [`QueryRequest`], the
    /// [`Submission::group`] builder, or the [`Submission::batch`] builder
    /// — and returns one [`ResponseHandle`] or one [`SubmitError`].
    ///
    /// * A **request / group** submission enqueues one job on its routed
    ///   shard's queue; redeem the handle with [`ResponseHandle::wait`].
    /// * A **batch** submission routes every request, then enqueues one
    ///   shared-traversal job per involved shard (each sub-batch is
    ///   Hilbert-ordered and reads upper-level pages once — see
    ///   [`gnn_core::batch`]); redeem with [`ResponseHandle::wait_all`],
    ///   which restores submission order. Results and per-query stats are
    ///   bit-identical to submitting each request alone.
    /// * Blocking submissions (the default) wait out backpressure;
    ///   `.blocking(false)` fails fast with [`SubmitError::QueueFull`].
    ///
    /// Errors: [`SubmitError::QueueFull`] (non-blocking, routed queue
    /// full), [`SubmitError::Shutdown`] (shutdown already initiated),
    /// [`SubmitError::BadGroup`] (a group submission's points don't form a
    /// valid query group). Per-query failures — a worker panic, a deadline
    /// shed — are **not** submission errors: they come back through the
    /// handle as typed [`QueryError`] outcomes.
    pub fn submit(&self, submission: impl Into<Submission>) -> Result<ResponseHandle, SubmitError> {
        let submission = submission.into();
        let blocking = submission.blocking;
        match submission.kind {
            SubmissionKind::Request(request) => {
                self.enqueue_single(request, blocking).map_err(|(_, e)| e)
            }
            SubmissionKind::Group(group) => {
                let request =
                    group.resolve(self.config.default_k, self.config.default_aggregate)?;
                self.enqueue_single(request, blocking).map_err(|(_, e)| e)
            }
            SubmissionKind::Batch(requests) => self.enqueue_batch(requests, blocking),
        }
    }

    /// Enqueues one request as a single job. On failure the request is
    /// handed back by value (the compat shims preserve the legacy
    /// "retry without cloning" contract).
    #[allow(clippy::result_large_err)]
    fn enqueue_single(
        &self,
        request: QueryRequest,
        blocking: bool,
    ) -> Result<ResponseHandle, (QueryRequest, SubmitError)> {
        let shard = self.route(&request);
        let Some(sender) = self.sender(shard) else {
            return Err((request, SubmitError::Shutdown));
        };
        let (reply, rx) = mpsc::channel();
        let job = Job {
            work: Work::Single(request),
            reply,
            submitted: Instant::now(),
        };
        let unwrap_single = |work: Work| match work {
            Work::Single(request) => request,
            Work::Batch { .. } => unreachable!("single job"),
        };
        if blocking {
            // A blocking `send` fails only when the shared receiver is
            // gone: shutdown closed the table between `sender()` and here
            // and the pool drained out (supervised workers never abandon
            // the receiver on a panic).
            if let Err(mpsc::SendError(job)) = sender.send(job) {
                return Err((unwrap_single(job.work), SubmitError::Shutdown));
            }
        } else {
            match sender.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    return Err((unwrap_single(job.work), SubmitError::QueueFull))
                }
                Err(TrySendError::Disconnected(job)) => {
                    return Err((unwrap_single(job.work), SubmitError::Shutdown))
                }
            }
        }
        self.pools[shard].routed.fetch_add(1, Ordering::Relaxed);
        Ok(ResponseHandle::new(rx, 1))
    }

    /// Routes a batch into per-shard sub-batches (one slot-load, submission
    /// order preserved inside each shard) and enqueues one shared-traversal
    /// job per involved shard.
    fn enqueue_batch(
        &self,
        requests: Vec<QueryRequest>,
        blocking: bool,
    ) -> Result<ResponseHandle, SubmitError> {
        let expected = requests.len();
        let (reply, rx) = mpsc::channel();
        if expected == 0 {
            return Ok(ResponseHandle::new(rx, 0));
        }
        // One routing snapshot for the whole batch: every request of the
        // batch is routed against the same generation.
        let snapshot = (self.pools.len() > 1).then(|| self.slot.load().0);
        let mut per_shard: Vec<(Vec<QueryRequest>, Vec<u32>)> =
            (0..self.pools.len()).map(|_| Default::default()).collect();
        for (i, request) in requests.into_iter().enumerate() {
            let shard = match &snapshot {
                None => 0,
                Some(snap) => request
                    .shard_hint
                    .filter(|&h| (h as usize) < self.pools.len())
                    .map_or_else(
                        || primary_shard(&request.group, snap) as usize,
                        |h| h as usize,
                    ),
            };
            per_shard[shard].0.push(request);
            per_shard[shard].1.push(i as u32);
        }
        // The whole sender table is cloned under one lock acquisition, so
        // a racing shutdown either rejects the entire batch or lets every
        // sub-batch in (sends can still lose to a close that lands
        // mid-loop, which maps to `Shutdown` like the up-front check).
        let senders = lock_unpoisoned(&self.senders)
            .as_ref()
            .ok_or(SubmitError::Shutdown)?
            .clone();
        let submitted = Instant::now();
        for (shard, (sub_requests, indices)) in per_shard.into_iter().enumerate() {
            if sub_requests.is_empty() {
                continue;
            }
            let queries = sub_requests.len() as u64;
            let job = Job {
                work: Work::Batch {
                    requests: sub_requests,
                    indices,
                },
                reply: reply.clone(),
                submitted,
            };
            if blocking {
                if senders[shard].send(job).is_err() {
                    return Err(SubmitError::Shutdown);
                }
            } else {
                match senders[shard].try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => return Err(SubmitError::QueueFull),
                    Err(TrySendError::Disconnected(_)) => return Err(SubmitError::Shutdown),
                }
            }
            self.pools[shard]
                .routed
                .fetch_add(queries, Ordering::Relaxed);
        }
        Ok(ResponseHandle::new(rx, expected))
    }

    /// Aggregated counters so far (cheap: atomic loads plus lock-free ring
    /// snapshots — safe to poll from a metrics scraper while traffic
    /// runs). The flight timeline is a point-in-time merge of every ring;
    /// workers keep recording while it is read.
    pub fn stats(&self) -> ServiceStats {
        let mut per_worker = Vec::new();
        let mut per_shard = Vec::with_capacity(self.pools.len());
        let mut latency = LatencySnapshot::empty();
        let mut stages = StageSnapshot::empty();
        let mut rings = Vec::new();
        let mut worker_id = 0usize;
        let (mut batches, mut batch_queries) = (0u64, 0u64);
        let (mut batch_unique_pages, mut batch_sequential_pages) = (0u64, 0u64);
        let mut faults = FaultLedger::default();
        for (shard, pool) in self.pools.iter().enumerate() {
            let mut stats = ShardStats {
                shard,
                routed: pool.routed.load(Ordering::Relaxed),
                queries: 0,
                single_shard_hits: 0,
                shards_consulted: 0,
                latency: LatencySnapshot::empty(),
            };
            for c in &pool.counters {
                per_worker.push(c.snapshot(worker_id, shard));
                worker_id += 1;
                stats.queries += c.queries.load(Ordering::Relaxed);
                stats.single_shard_hits += c.single_shard_hits.load(Ordering::Relaxed);
                stats.shards_consulted += c.shards_consulted.load(Ordering::Relaxed);
                batches += c.batches.load(Ordering::Relaxed);
                batch_queries += c.batch_queries.load(Ordering::Relaxed);
                batch_unique_pages += c.batch_unique_pages.load(Ordering::Relaxed);
                batch_sequential_pages += c.batch_sequential_pages.load(Ordering::Relaxed);
                faults = faults.merged(c.fault_ledger());
                stats.latency.merge(&c.latency.snapshot());
                stages.merge(&c.stages.snapshot());
                rings.push(c.flight.snapshot());
            }
            latency.merge(&stats.latency);
            per_shard.push(stats);
        }
        rings.push(self.control.snapshot());
        rings.push(self.driver_flight.snapshot());
        let flight = FlightLog::merge(rings);
        ServiceStats {
            generation: self.slot.generation(),
            queries_served: per_worker.iter().map(|w| w.queries).sum(),
            node_accesses: per_worker.iter().map(|w| w.node_accesses).sum(),
            io: per_worker.iter().map(|w| w.io).sum(),
            dist_computations: per_worker.iter().map(|w| w.dist_computations).sum(),
            single_shard_hits: per_shard.iter().map(|s| s.single_shard_hits).sum(),
            batches,
            batch_queries,
            batch_unique_pages,
            batch_sequential_pages,
            faults,
            per_worker,
            per_shard,
            latency,
            stages,
            flight,
            simd_level: gnn_geom::simd::dispatch_level().label(),
        }
    }

    /// Graceful shutdown: stops accepting new requests, lets the workers
    /// drain every queued request (their responses stay redeemable), joins
    /// the pools, and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop_and_join();
        self.stats()
    }

    /// Closes every shard queue from `&self` without joining the workers:
    /// submissions from this point on fail cleanly
    /// ([`SubmitError::Shutdown`]), while
    /// every request accepted **before** the close is still drained and
    /// answered exactly once — and no snapshot can be published past the
    /// close ([`Service::try_publish_sharded`]). Callable from any thread —
    /// this is what lets a shutdown race in-flight `submit_batch` calls and
    /// a running [`RefreshDriver`] deterministically. Follow with
    /// [`Service::shutdown`] to join the pools and collect the final
    /// counters.
    pub fn initiate_shutdown(&self) {
        // Dropping the senders makes every worker's `recv` fail once its
        // queue is drained — the shutdown signal.
        drop(lock_unpoisoned(&self.senders).take());
    }

    fn sender(&self, shard: usize) -> Option<SyncSender<Job>> {
        // Clone-and-release: the bounded `send` may block on backpressure,
        // and holding the lock there would stall `initiate_shutdown` and
        // every other submitter.
        lock_unpoisoned(&self.senders)
            .as_ref()
            .map(|s| s[shard].clone())
    }

    fn stop_and_join(&mut self) {
        self.initiate_shutdown();
        for pool in &mut self.pools {
            for handle in pool.workers.drain(..) {
                // Supervised workers answer the in-flight request before
                // rebuilding their state, so a panic never leaves a handle
                // hanging; joining must not poison shutdown regardless.
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let running = lock_unpoisoned(&self.senders).is_some();
        f.debug_struct("Service")
            .field("shards", &self.pools.len())
            .field("workers", &self.config.workers)
            .field("queue_depth", &self.config.queue_depth)
            .field("generation", &self.slot.generation())
            .field("running", &running)
            .finish()
    }
}

/// Applies the fault plan at the execution point of a worker's `nth`
/// attempt (1-based): the injected per-query latency, then the injected
/// panic. Runs **inside** the supervision `catch_unwind`, before the
/// algorithm — a non-faulted query's execution is untouched.
fn inject_fault(fault: &FaultPlan, worker: usize, nth: u64) {
    if fault.is_empty() {
        return;
    }
    // A panicking query crashes *instead of* executing, so it fires before
    // the injected latency — the latency models execution cost, which a
    // crashed query never completes.
    if fault.should_panic(worker, nth) {
        panic!("injected fault: worker {worker} query {nth}");
    }
    if let Some(latency) = fault.injected_latency() {
        std::thread::sleep(latency);
    }
}

/// Whether a dequeued request's deadline has already expired. If so, the
/// worker answers [`QueryError::DeadlineExceeded`] instead of executing —
/// load shedding at the dequeue point, where queue staleness is known.
fn expired(deadline: Option<Duration>, submitted: Instant) -> bool {
    deadline.is_some_and(|d| submitted.elapsed() >= d)
}

/// Saturating nanosecond count of a duration — the flight-recorder payload
/// encoding for stage timings.
pub(crate) fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The worker body: per-shard cursors + one scratch + planner per thread.
/// The scratch is reused for the thread's whole lifetime — steady-state
/// queries allocate only their response vectors — while the cursors are
/// rebuilt (cheap constructors) whenever a newer snapshot generation is
/// picked up between queries. Queries run through
/// [`QueryRequest::execute_sharded_in`]: a single-shard snapshot follows
/// the exact single-tree path, a partitioned one the best-first cross-shard
/// merge.
///
/// **Supervision:** every query executes inside `catch_unwind`. A panic —
/// injected by the [`FaultPlan`] or real — rebuilds the worker's serving
/// state (fresh scratch + cursors: nothing a panic may have left
/// mid-mutation survives), bumps the fault ledger, answers the in-flight
/// request with [`QueryError::WorkerPanicked`], and keeps serving on
/// the same thread. Pool capacity and per-shard availability are invariant
/// under panics, and no `wait()` ever hangs on one. Panics unwind out of
/// the algorithm only; the snapshot itself is immutable and shared, so no
/// tree state can be corrupted.
fn worker_loop(
    slot: &SnapshotSlot,
    rx: &Mutex<Receiver<Job>>,
    planner: Planner,
    counters: &WorkerCounters,
    worker_id: usize,
    fault: &FaultPlan,
    network: Option<&dyn NetworkBackend>,
) {
    let mut scratch = QueryScratch::new();
    let (mut snap, mut generation) = slot.load();
    // A job dequeued under a stale generation: carried across the reload so
    // it executes on the snapshot current at its dequeue, never dropped.
    let mut pending: Option<Job> = None;
    let mut warmed = false;
    // Execution attempts by this worker, 1-based: the fault plan's query
    // coordinate. Counts every execution start, including ones that panic.
    let mut attempts = 0u64;
    loop {
        let mut cursors: Vec<TreeCursor<'_>> = snap.shards().iter().map(|s| s.cursor()).collect();
        // Self-warm before serving: one canned query sizes the scratch's
        // core buffers, so a worker's very first real request does not pay
        // the cold-start allocations inside a caller's latency measurement.
        // The per-pool queues give no per-worker routing, so no submitted
        // warm-up batch could guarantee reaching every worker — only the
        // worker itself can. Uncounted: it is not traffic. Once is enough:
        // the scratch survives snapshot swaps.
        if !warmed {
            warmed = true;
            if let Some(backend) = network {
                // Network services self-warm through the backend: it sizes
                // the per-worker network state the same way the canned
                // Euclidean query sizes the core scratch.
                backend.warm(&mut scratch);
            } else if !snap.is_empty() {
                if let Ok(group) = QueryGroup::sum(vec![snap.root_mbr().center()]) {
                    let warm = QueryRequest::new(group, 1);
                    let _ = warm.execute_sharded_in(&planner, &snap, &cursors, &mut scratch);
                    for c in &cursors {
                        c.reset();
                    }
                }
            }
        }
        // Serve on this snapshot until a newer generation is published.
        let handoff = loop {
            let job = match pending.take() {
                Some(job) => job,
                None => {
                    let received = {
                        let guard = lock_unpoisoned(rx);
                        guard.recv()
                    };
                    match received {
                        Ok(job) => job,
                        // Sender dropped and queue drained: shutdown.
                        Err(_) => return,
                    }
                }
            };
            // Swap check between queries only: one atomic load on the hot
            // path, never a lock; an in-flight query is never interrupted.
            // Checked after the dequeue, so every request runs on the
            // generation current when a worker picked it up — once
            // `publish` returns, no later-dequeued request sees the old
            // snapshot.
            if slot.generation() != generation {
                break Some(job);
            }
            let Job {
                work,
                reply,
                submitted,
            } = job;
            match work {
                Work::Single(request) => {
                    // Queue wait ends here: the request is now being
                    // processed. The `Enqueued` event is back-stamped with
                    // the submit instant so the merged timeline shows the
                    // wait, while the ring stays single-producer.
                    let queue_wait = submitted.elapsed();
                    counters
                        .flight
                        .record_at(submitted, FlightEventKind::Enqueued, 1);
                    counters
                        .flight
                        .record(FlightEventKind::Dequeued, duration_nanos(queue_wait));
                    // Shed at dequeue: a request whose deadline expired in
                    // queue is answered typed instead of executed.
                    if expired(request.deadline, submitted) {
                        counters.record_shed(queue_wait);
                        let _ = reply.send((0, Err(QueryError::DeadlineExceeded)));
                        continue;
                    }
                    let deadline = request.deadline;
                    attempts += 1;
                    counters.flight.record(FlightEventKind::ExecStart, 1);
                    let exec0 = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        inject_fault(fault, worker_id, attempts);
                        // A network service executes every request on the
                        // backend; Euclidean services follow the sharded
                        // path (single-shard snapshots take the exact
                        // single-tree route inside).
                        let target = match network {
                            Some(backend) => Target::Network(backend),
                            None => Target::Sharded {
                                snapshot: &snap,
                                cursors: &cursors,
                            },
                        };
                        let (choice, neighbors, stats, routing) =
                            request.execute_on(&planner, &target, &mut scratch);
                        let response = QueryResponse {
                            choice,
                            neighbors: neighbors.to_vec(),
                            stats,
                            generation,
                            routing,
                            // Opt-in trace: a `Copy` struct filled inline —
                            // no allocation whether requested or not, and
                            // nothing about execution depended on the flag.
                            trace: request.trace.then(|| QueryTrace {
                                queue_wait,
                                execution: exec0.elapsed(),
                                node_accesses: stats.data_tree.logical,
                                pages: stats.data_tree.io,
                                dist_computations: stats.dist_computations,
                            }),
                        };
                        (response, stats, routing)
                    }));
                    match outcome {
                        Ok((response, stats, routing)) => {
                            let execution = exec0.elapsed();
                            counters
                                .flight
                                .record(FlightEventKind::ExecEnd, duration_nanos(execution));
                            // `busy` counts execution only; the latency
                            // histogram measures submit → response, so
                            // queue wait under overload is visible.
                            counters.record(
                                &stats,
                                routing,
                                queue_wait,
                                execution,
                                submitted.elapsed(),
                            );
                            if deadline.is_some_and(|d| submitted.elapsed() > d) {
                                counters.deadline_missed.fetch_add(1, Ordering::Relaxed);
                            }
                            // The caller may have dropped its handle; that
                            // is not an error.
                            let sent0 = Instant::now();
                            let _ = reply.send((0, Ok(response)));
                            counters.stages.reply.record(sent0.elapsed());
                        }
                        Err(_) => {
                            counters.panics.fetch_add(1, Ordering::Relaxed);
                            counters.flight.record(FlightEventKind::Panicked, attempts);
                            // Respawn in place BEFORE releasing the reply:
                            // nothing the panic may have left mid-mutation
                            // survives into the next query, and the caller
                            // cannot enqueue follow-up work (whose Enqueued
                            // event back-stamps to submit time) until the
                            // Respawned event is on the ring — the flight
                            // timeline stays a strict per-query transcript.
                            scratch = QueryScratch::new();
                            cursors = snap.shards().iter().map(|s| s.cursor()).collect();
                            counters.respawns.fetch_add(1, Ordering::Relaxed);
                            counters.flight.record(FlightEventKind::Respawned, 0);
                            let _ = reply.send((0, Err(QueryError::WorkerPanicked)));
                        }
                    }
                }
                Work::Batch {
                    requests,
                    indices: all_indices,
                } => {
                    // Job-level queue wait: every member waited behind the
                    // same queue slot. One Enqueued/Dequeued event pair per
                    // job (payload = member count / wait nanos).
                    let queue_wait = submitted.elapsed();
                    counters.flight.record_at(
                        submitted,
                        FlightEventKind::Enqueued,
                        requests.len() as u64,
                    );
                    counters
                        .flight
                        .record(FlightEventKind::Dequeued, duration_nanos(queue_wait));
                    // Shed expired members up front (typed, per request);
                    // the survivors run as shared-traversal passes.
                    let mut batch_requests = Vec::with_capacity(requests.len());
                    let mut indices = Vec::with_capacity(all_indices.len());
                    for (request, index) in requests.into_iter().zip(all_indices) {
                        if expired(request.deadline, submitted) {
                            counters.record_shed(queue_wait);
                            let _ = reply.send((index, Err(QueryError::DeadlineExceeded)));
                        } else {
                            batch_requests.push(request);
                            indices.push(index);
                        }
                    }
                    // One shared-traversal pass over the sub-batch. Every
                    // query still runs the unchanged per-query algorithm,
                    // so results and per-query stats (sequential-mode NA)
                    // are bit-identical to single submissions; only the
                    // batch ledger (unique vs sequential pages) is new.
                    //
                    // Panic-resume: a pass that panics answers the
                    // in-flight query with a typed error, rebuilds the
                    // worker state, and re-runs the unanswered remainder
                    // as a fresh shared pass — every other query of the
                    // batch is answered exactly once. An aborted pass
                    // contributes nothing to the batch ledger (its page
                    // overlay died with the cursors); the resumed
                    // remainder accounts as the pass that completed.
                    while !batch_requests.is_empty() {
                        let mut answered = vec![false; batch_requests.len()];
                        let mut current: Option<usize> = None;
                        let mut pass_attempts = attempts;
                        // Ledger-before-last-reply: the pass's final
                        // response is stashed here instead of sent from the
                        // sink, and only flushed **after** `record_batch`.
                        // Once a caller's `wait_all` returns, the batch
                        // ledger is therefore already visible to `stats()`
                        // — no eventual-consistency window. The held query
                        // is left unanswered on the `answered` map, so a
                        // (hypothetical) panic after its sink call re-runs
                        // it in the resumed pass and it is still answered
                        // exactly once.
                        type Held = (usize, QueryResponse, QueryStats, ShardRouting, Duration);
                        let mut held: Option<Held> = None;
                        let mut sent = 0usize;
                        let total = batch_requests.len();
                        counters
                            .flight
                            .record(FlightEventKind::ExecStart, total as u64);
                        let pass0 = Instant::now();
                        let mut last = pass0;
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            // Same target rule as the single path. The
                            // batch executor is target-generic: on a
                            // network target the Hilbert pass still orders
                            // the sub-batch by group MBR (deterministic,
                            // good source-vertex locality), while page
                            // tracking sees no cursors and reports zero
                            // unique pages — fixed up after the pass, since
                            // network refinement shares no page reads.
                            let target = match network {
                                Some(backend) => Target::Network(backend),
                                None => Target::Sharded {
                                    snapshot: &snap,
                                    cursors: &cursors,
                                },
                            };
                            execute_batch_hooked(
                                &planner,
                                &target,
                                &batch_requests,
                                &mut scratch,
                                |i| {
                                    current = Some(i);
                                    pass_attempts += 1;
                                    inject_fault(fault, worker_id, pass_attempts);
                                },
                                |i, choice, neighbors, stats, routing| {
                                    let now = Instant::now();
                                    let execution = now - last;
                                    last = now;
                                    let response = QueryResponse {
                                        choice,
                                        neighbors: neighbors.to_vec(),
                                        stats: *stats,
                                        generation,
                                        routing,
                                        trace: batch_requests[i].trace.then_some(QueryTrace {
                                            queue_wait,
                                            execution,
                                            node_accesses: stats.data_tree.logical,
                                            pages: stats.data_tree.io,
                                            dist_computations: stats.dist_computations,
                                        }),
                                    };
                                    sent += 1;
                                    if sent == total {
                                        held = Some((i, response, *stats, routing, execution));
                                        return;
                                    }
                                    counters.record(
                                        stats,
                                        routing,
                                        queue_wait,
                                        execution,
                                        submitted.elapsed(),
                                    );
                                    if batch_requests[i]
                                        .deadline
                                        .is_some_and(|d| submitted.elapsed() > d)
                                    {
                                        counters.deadline_missed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    answered[i] = true;
                                    let sent0 = Instant::now();
                                    let _ = reply.send((indices[i], Ok(response)));
                                    counters.stages.reply.record(sent0.elapsed());
                                },
                            )
                        }));
                        attempts = pass_attempts;
                        match outcome {
                            Ok(mut accounting) => {
                                if network.is_some() {
                                    // No shared traversal under network
                                    // distance: every query pays its own
                                    // R-tree filter reads, so the honest
                                    // ledger is unique == sequential
                                    // (savings 0), not the untracked 0.
                                    accounting.unique_pages = accounting.sequential_pages;
                                }
                                counters.record_batch(&accounting);
                                counters.flight.record(
                                    FlightEventKind::ExecEnd,
                                    duration_nanos(pass0.elapsed()),
                                );
                                if let Some((i, response, stats, routing, execution)) = held.take()
                                {
                                    counters.record(
                                        &stats,
                                        routing,
                                        queue_wait,
                                        execution,
                                        submitted.elapsed(),
                                    );
                                    if batch_requests[i]
                                        .deadline
                                        .is_some_and(|d| submitted.elapsed() > d)
                                    {
                                        counters.deadline_missed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    let sent0 = Instant::now();
                                    let _ = reply.send((indices[i], Ok(response)));
                                    counters.stages.reply.record(sent0.elapsed());
                                }
                                break;
                            }
                            Err(_) => {
                                counters.panics.fetch_add(1, Ordering::Relaxed);
                                counters
                                    .flight
                                    .record(FlightEventKind::Panicked, pass_attempts);
                                // Respawn before releasing the victim's
                                // reply (same transcript discipline as the
                                // single-query path).
                                scratch = QueryScratch::new();
                                cursors = snap.shards().iter().map(|s| s.cursor()).collect();
                                counters.respawns.fetch_add(1, Ordering::Relaxed);
                                counters.flight.record(FlightEventKind::Respawned, 0);
                                // The in-flight query (per the before-hook)
                                // is the victim; if the pass died before
                                // any hook fired, charge the first
                                // unanswered query so the loop always
                                // makes progress. A stashed-but-unflushed
                                // reply (`held`) is dropped with the pass:
                                // its query was never marked answered, so
                                // the resumed pass re-runs it.
                                let victim = current
                                    .filter(|&i| !answered[i])
                                    .or_else(|| answered.iter().position(|&a| !a));
                                if let Some(v) = victim {
                                    answered[v] = true;
                                    let _ =
                                        reply.send((indices[v], Err(QueryError::WorkerPanicked)));
                                }
                                let mut keep = answered.iter().map(|&a| !a);
                                batch_requests.retain(|_| keep.next().unwrap());
                                let mut keep = answered.iter().map(|&a| !a);
                                indices.retain(|_| keep.next().unwrap());
                            }
                        }
                    }
                }
            }
        };
        pending = handoff;
        drop(cursors);
        let (next_snap, next_generation) = slot.load();
        snap = next_snap;
        generation = next_generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_core::{Algo, Mbm, Neighbor};
    use gnn_geom::{Point, PointId};
    use gnn_rtree::{LeafEntry, RTree, RTreeParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn snapshot(n: usize, seed: u64) -> Arc<PackedRTree> {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = RTree::bulk_load(
            RTreeParams::with_capacity(8),
            (0..n).map(|i| {
                LeafEntry::new(
                    PointId(i as u64),
                    Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0),
                )
            }),
        );
        Arc::new(tree.freeze())
    }

    fn random_group(n: usize, seed: u64) -> QueryGroup {
        let mut rng = StdRng::seed_from_u64(seed);
        QueryGroup::sum(
            (0..n)
                .map(|_| {
                    Point::new(
                        20.0 + rng.gen::<f64>() * 40.0,
                        20.0 + rng.gen::<f64>() * 40.0,
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_query_matches_direct_mbm() {
        let snap = snapshot(800, 1);
        let service = Service::start(Arc::clone(&snap), ServiceConfig::with_workers(2));
        let group = random_group(5, 2);
        let response = service
            .submit(QueryRequest::new(group.clone(), 4))
            .unwrap()
            .wait()
            .unwrap();
        let want = Mbm::best_first().k_gnn(&snap.cursor(), &group, 4);
        assert_eq!(response.neighbors, want.neighbors);
        assert_eq!(
            response.stats.data_tree.logical,
            want.stats.data_tree.logical
        );
        assert_eq!(response.routing, ShardRouting::default());
    }

    #[test]
    fn batch_responses_come_back_in_submission_order() {
        let snap = snapshot(600, 3);
        let service = Service::start(snap, ServiceConfig::with_workers(4));
        let requests: Vec<QueryRequest> = (0..24)
            .map(|i| QueryRequest::new(random_group(4, 100 + i), 1 + (i as usize % 3)))
            .collect();
        let responses = service
            .submit(Submission::batch(requests.clone()))
            .unwrap()
            .wait_all()
            .unwrap();
        assert_eq!(responses.len(), 24);
        for (req, r) in requests.iter().zip(&responses) {
            assert_eq!(r.neighbors.len(), req.k);
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 24);
        assert_eq!(stats.latency.count(), 24);
        assert!(stats.node_accesses > 0);
        assert_eq!(stats.per_worker.len(), 4);
        let sum: u64 = stats.per_worker.iter().map(|w| w.queries).sum();
        assert_eq!(sum, 24);
        assert_eq!(stats.per_shard.len(), 1);
        assert_eq!(stats.per_shard[0].routed, 24);
        assert_eq!(stats.single_shard_fraction(), Some(1.0));
        // Unsharded: the whole batch is one shared-traversal sub-batch.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_queries, 24);
        assert_eq!(stats.mean_batch_size(), Some(24.0));
        assert!(stats.batch_unique_pages <= stats.batch_sequential_pages);
    }

    #[test]
    fn batched_responses_match_single_submissions_bit_for_bit() {
        let snap = snapshot(900, 90);
        let requests: Vec<QueryRequest> = (0..16)
            .map(|i| QueryRequest::new(random_group(4, 900 + i), 3))
            .collect();
        let service = Service::start(Arc::clone(&snap), ServiceConfig::with_workers(2));
        let singles: Vec<QueryResponse> = requests
            .iter()
            .map(|r| service.submit(r.clone()).unwrap().wait().unwrap())
            .collect();
        let batched = service
            .submit(Submission::batch(requests))
            .unwrap()
            .wait_all()
            .unwrap();
        for (i, (single, batch)) in singles.iter().zip(&batched).enumerate() {
            assert_eq!(single.neighbors, batch.neighbors, "query {i}");
            assert_eq!(
                single.stats.data_tree.logical, batch.stats.data_tree.logical,
                "query {i}: sequential-mode NA"
            );
            assert_eq!(single.choice, batch.choice, "query {i}");
            assert_eq!(single.routing, batch.routing, "query {i}");
        }
        let stats = service.shutdown();
        // Batch ledger covers only the batched half of the traffic.
        assert_eq!(stats.batch_queries, 16);
        assert_eq!(stats.queries_served, 32);
        assert!(stats.shared_read_savings().is_some());
    }

    #[test]
    fn empty_batch_yields_empty_responses() {
        let snap = snapshot(200, 91);
        let service = Service::start(snap, ServiceConfig::with_workers(1));
        let handle = service.submit(Submission::batch(Vec::new())).unwrap();
        assert_eq!(handle.expected(), 0);
        assert_eq!(handle.wait_all().unwrap(), Vec::new());
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 0);
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.mean_batch_size(), None);
        assert_eq!(stats.shared_read_savings(), None);
    }

    #[test]
    fn group_submission_resolves_service_defaults() {
        let snap = snapshot(500, 92);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 1,
                default_k: 5,
                default_aggregate: Aggregate::Max,
                ..ServiceConfig::default()
            },
        );
        // Defaults: configured k and aggregate.
        let pts = random_group(4, 93).points().to_vec();
        let r = service
            .submit(Submission::group(pts.clone()))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.neighbors.len(), 5);
        // Overrides win, and a pinned algorithm is honored.
        let r = service
            .submit(
                Submission::group(pts)
                    .k(2)
                    .aggregate(Aggregate::Sum)
                    .algo(Algo::Mqm),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.neighbors.len(), 2);
        assert_eq!(r.choice, gnn_core::Choice::Mqm);
        // Invalid groups fail at submission, not on the handle.
        match service.submit(Submission::group(Vec::new())) {
            Err(SubmitError::BadGroup(_)) => {}
            other => panic!("expected BadGroup, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let snap = snapshot(500, 4);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 1,
                queue_depth: 64,
                ..ServiceConfig::default()
            },
        );
        let handle = service
            .submit(Submission::batch(
                (0..32).map(|i| QueryRequest::new(random_group(4, i), 2)),
            ))
            .unwrap();
        // Shut down immediately: every already-queued request must still be
        // answered.
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 32);
        for r in handle.wait_all().unwrap() {
            assert_eq!(r.neighbors.len(), 2);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_preserve_legacy_behavior() {
        let snap = snapshot(400, 5);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 1,
                default_k: 3,
                default_aggregate: Aggregate::Max,
                ..ServiceConfig::default()
            },
        );
        // submit_points: configured defaults, QueryGroupError on bad input.
        let pts = random_group(4, 9).points().to_vec();
        let r = service.submit_points(pts).unwrap().wait().unwrap();
        assert_eq!(r.neighbors.len(), 3);
        assert!(service.submit_points(Vec::new()).is_err());
        // submit_batch: per-request handles in submission order.
        let handles =
            service.submit_batch((0..4).map(|i| QueryRequest::new(random_group(4, 40 + i), 2)));
        assert_eq!(handles.len(), 4);
        for h in handles {
            assert_eq!(h.wait().unwrap().neighbors.len(), 2);
        }
        // try_submit: hands the request back on failure.
        service.initiate_shutdown();
        match service.try_submit(QueryRequest::new(random_group(4, 44), 1)) {
            Err((req, ServiceError::Shutdown)) => assert_eq!(req.k, 1),
            other => panic!("expected Shutdown, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn explicit_algo_requests_report_their_choice() {
        let snap = snapshot(500, 6);
        let service = Service::start(snap, ServiceConfig::with_workers(2));
        for (algo, want) in [
            (Algo::Mqm, gnn_core::Choice::Mqm),
            (Algo::Spm, gnn_core::Choice::Spm),
            (Algo::Mbm, gnn_core::Choice::Mbm),
            (Algo::Auto, gnn_core::Choice::Mbm),
        ] {
            let r = service
                .submit(QueryRequest::with_algo(random_group(4, 7), 2, algo))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(r.choice, want, "{algo:?}");
        }
    }

    #[test]
    fn poll_eventually_returns() {
        let snap = snapshot(300, 7);
        let service = Service::start(snap, ServiceConfig::with_workers(1));
        let mut handle = service
            .submit(QueryRequest::new(random_group(3, 8), 1))
            .unwrap();
        let mut spins = 0u64;
        let r = loop {
            if let Some(r) = handle.poll() {
                break r;
            }
            spins += 1;
            std::thread::yield_now();
            assert!(spins < 100_000_000, "query never completed");
        };
        assert_eq!(r.unwrap().neighbors.len(), 1);
    }

    #[test]
    fn empty_snapshot_serves_empty_results() {
        let snap = Arc::new(RTree::new(RTreeParams::default()).freeze());
        let service = Service::start(snap, ServiceConfig::with_workers(2));
        let r = service
            .submit(QueryRequest::new(random_group(3, 9), 5))
            .unwrap()
            .wait()
            .unwrap();
        assert!(r.neighbors.is_empty());
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 1);
    }

    #[test]
    fn publish_swaps_snapshots_between_queries() {
        let first = snapshot(500, 21);
        let second = snapshot(900, 22);
        let service = Service::start(Arc::clone(&first), ServiceConfig::with_workers(2));
        assert_eq!(service.generation(), 1);
        let group = random_group(5, 23);

        let r1 = service
            .submit(QueryRequest::new(group.clone(), 3))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r1.generation, 1);
        let want1 = Mbm::best_first().k_gnn(&first.cursor(), &group, 3);
        assert_eq!(r1.neighbors, want1.neighbors);

        let generation = service.publish(Arc::clone(&second));
        assert_eq!(generation, 2);
        assert_eq!(service.generation(), 2);
        assert!(Arc::ptr_eq(&service.snapshot(), &second));

        // Published before this submission: the request must be served on
        // the new snapshot and tagged with its generation.
        let r2 = service
            .submit(QueryRequest::new(group.clone(), 3))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r2.generation, 2);
        let want2 = Mbm::best_first().k_gnn(&second.cursor(), &group, 3);
        assert_eq!(r2.neighbors, want2.neighbors);

        let stats = service.shutdown();
        assert_eq!(stats.generation, 2);
        assert_eq!(stats.queries_served, 2);
    }

    #[test]
    fn repeated_publishes_serve_the_latest_snapshot() {
        let snaps: Vec<_> = (0..5)
            .map(|i| snapshot(300 + 50 * i, 30 + i as u64))
            .collect();
        let service = Service::start(Arc::clone(&snaps[0]), ServiceConfig::with_workers(3));
        let group = random_group(4, 31);
        for (i, snap) in snaps.iter().enumerate().skip(1) {
            assert_eq!(service.publish(Arc::clone(snap)), i as u64 + 1);
            let r = service
                .submit(QueryRequest::new(group.clone(), 2))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(r.generation, i as u64 + 1, "publish {i}");
            let want = Mbm::best_first().k_gnn(&snap.cursor(), &group, 2);
            assert_eq!(r.neighbors, want.neighbors, "publish {i}");
        }
        let stats = service.shutdown();
        assert_eq!(stats.generation, 5);
    }

    #[test]
    fn initiate_shutdown_rejects_new_submissions_but_drains_accepted() {
        let snap = snapshot(400, 40);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 1,
                queue_depth: 64,
                ..ServiceConfig::default()
            },
        );
        let accepted = service
            .submit(Submission::batch(
                (0..16).map(|i| QueryRequest::new(random_group(4, 50 + i), 2)),
            ))
            .unwrap();
        service.initiate_shutdown();
        // Post-close submissions fail cleanly, blocking or not.
        assert_eq!(
            service
                .submit(QueryRequest::new(random_group(4, 99), 1))
                .err(),
            Some(SubmitError::Shutdown)
        );
        assert_eq!(
            service
                .submit(
                    Submission::request(QueryRequest::new(random_group(4, 98), 1)).blocking(false)
                )
                .err(),
            Some(SubmitError::Shutdown)
        );
        assert_eq!(
            service
                .submit(Submission::batch([QueryRequest::new(
                    random_group(4, 97),
                    1
                )]))
                .err(),
            Some(SubmitError::Shutdown)
        );
        // Everything accepted before the close is answered exactly once.
        for r in accepted.wait_all().unwrap() {
            assert_eq!(r.neighbors.len(), 2);
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 16);
    }

    #[test]
    fn shutdown_racing_submit_batch_drains_deterministically() {
        // Several threads pour batches in through the bounded queue while
        // another thread closes it at an arbitrary point. The invariant
        // that must hold for every interleaving: each submitted request
        // resolves to exactly one outcome — a response (iff it was accepted
        // before the close; the count must equal the workers' served
        // counter) or a clean `Shutdown` error. Nothing hangs, nothing
        // is answered twice, nothing is silently dropped.
        let snap = snapshot(600, 60);
        let service = Service::start(
            snap,
            ServiceConfig {
                workers: 2,
                queue_depth: 8, // far smaller than the load: submits block
                ..ServiceConfig::default()
            },
        );
        let outcomes: Vec<Result<QueryResponse, SubmitError>> = std::thread::scope(|s| {
            let mut submitters = Vec::new();
            for t in 0..3u64 {
                let service = &service;
                submitters.push(s.spawn(move || {
                    (0..40)
                        .map(|i| {
                            let request = QueryRequest::new(random_group(4, 1000 + t * 100 + i), 1);
                            service.submit(request).and_then(ResponseHandle::wait)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            s.spawn(|| {
                // No sleep: yielding lands the close at a scheduler-chosen
                // point inside the submission storm.
                for _ in 0..50 {
                    std::thread::yield_now();
                }
                service.initiate_shutdown();
            });
            submitters
                .into_iter()
                .flat_map(|j| j.join().expect("submitter panicked"))
                .collect()
        });
        let stats = service.shutdown();
        assert_eq!(outcomes.len(), 120);
        let ok = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        assert_eq!(
            ok, stats.queries_served,
            "answered responses must equal requests the workers served"
        );
        assert_eq!(stats.latency.count(), stats.queries_served);
        for o in &outcomes {
            match o {
                Ok(r) => assert_eq!(r.neighbors.len(), 1),
                Err(e) => assert_eq!(*e, SubmitError::Shutdown),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let snap = Arc::new(RTree::new(RTreeParams::default()).freeze());
        Service::start(
            snap,
            ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            },
        );
    }

    // --- sharded serving ---

    fn sharded_snapshot(n: usize, shards: usize, seed: u64) -> Arc<ShardedSnapshot> {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = RTree::bulk_load(
            RTreeParams::with_capacity(8),
            (0..n).map(|i| {
                LeafEntry::new(
                    PointId(i as u64),
                    Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0),
                )
            }),
        );
        Arc::new(tree.freeze_sharded(shards))
    }

    #[test]
    fn sharded_service_matches_sequential_merge() {
        let snap = sharded_snapshot(2000, 4, 70);
        let service = Service::start_sharded(Arc::clone(&snap), ServiceConfig::with_workers(4));
        let planner = Planner::new();
        let mut scratch = QueryScratch::new();
        let cursors: Vec<_> = snap.shards().iter().map(|s| s.cursor()).collect();
        for i in 0..24u64 {
            let request = QueryRequest::new(random_group(4, 300 + i), 3);
            let (choice, want, stats, routing) =
                request.execute_sharded_in(&planner, &snap, &cursors, &mut scratch);
            let want = want.to_vec();
            let r = service.submit(request).unwrap().wait().unwrap();
            assert_eq!(r.choice, choice, "query {i}");
            assert_eq!(r.neighbors, want, "query {i}");
            assert_eq!(
                r.stats.data_tree.logical, stats.data_tree.logical,
                "query {i}"
            );
            assert_eq!(r.routing, routing, "query {i}");
        }
        let stats = service.shutdown();
        assert_eq!(stats.per_shard.len(), 4);
        assert_eq!(
            stats.per_shard.iter().map(|s| s.routed).sum::<u64>(),
            24,
            "every request routed to exactly one pool"
        );
        assert_eq!(stats.queries_served, 24);
    }

    #[test]
    fn sharded_batch_splits_into_per_shard_sub_batches() {
        let snap = sharded_snapshot(3000, 4, 85);
        let service = Service::start_sharded(Arc::clone(&snap), ServiceConfig::with_workers(4));
        // Queries centered in every shard, interleaved, so the batch
        // fans out into one sub-batch per shard.
        let mut requests = Vec::new();
        for round in 0..3 {
            for mbr in snap.directory() {
                let c = mbr.center();
                let g = QueryGroup::sum(vec![
                    c,
                    Point::new(c.x + 0.3 + round as f64 * 0.1, c.y + 0.2),
                ])
                .unwrap();
                requests.push(QueryRequest::new(g, 2));
            }
        }
        // Reference: each request alone through the sequential merge.
        let planner = Planner::new();
        let mut scratch = QueryScratch::new();
        let cursors: Vec<_> = snap.shards().iter().map(|s| s.cursor()).collect();
        let reference: Vec<(Vec<Neighbor>, u64)> = requests
            .iter()
            .map(|r| {
                let (_, n, stats, _) =
                    r.execute_sharded_in(&planner, &snap, &cursors, &mut scratch);
                (n.to_vec(), stats.data_tree.logical)
            })
            .collect();
        let responses = service
            .submit(Submission::batch(requests.clone()))
            .unwrap()
            .wait_all()
            .unwrap();
        for (i, ((want, want_na), got)) in reference.iter().zip(&responses).enumerate() {
            assert_eq!(&got.neighbors, want, "query {i}");
            assert_eq!(got.stats.data_tree.logical, *want_na, "query {i}: NA");
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 12);
        assert_eq!(stats.batch_queries, 12);
        assert_eq!(stats.batches, 4, "one sub-batch per shard");
        assert_eq!(stats.mean_batch_size(), Some(3.0));
        for s in &stats.per_shard {
            assert_eq!(s.routed, 3, "shard {}", s.shard);
        }
    }

    #[test]
    fn workers_distribute_across_pools_with_a_floor_of_one() {
        let snap = sharded_snapshot(500, 4, 71);
        // 6 workers over 4 shards: pools get 2,2,1,1.
        let service = Service::start_sharded(Arc::clone(&snap), ServiceConfig::with_workers(6));
        let stats = service.stats();
        assert_eq!(stats.per_worker.len(), 6);
        let mut per_pool = [0usize; 4];
        for w in &stats.per_worker {
            per_pool[w.shard] += 1;
        }
        assert_eq!(per_pool, [2, 2, 1, 1]);
        drop(service);
        // 2 workers over 4 shards: every pool still gets one.
        let service = Service::start_sharded(snap, ServiceConfig::with_workers(2));
        assert_eq!(service.stats().per_worker.len(), 4);
        drop(service);
    }

    #[test]
    fn router_honors_valid_shard_hints_only() {
        let snap = sharded_snapshot(1000, 3, 72);
        let service = Service::start_sharded(Arc::clone(&snap), ServiceConfig::with_workers(3));
        let group = random_group(3, 73);
        let natural = service.route(&QueryRequest::new(group.clone(), 1));
        let hinted = QueryRequest::new(group.clone(), 1).with_shard_hint(2);
        assert_eq!(service.route(&hinted), 2);
        let out_of_range = QueryRequest::new(group, 1).with_shard_hint(99);
        assert_eq!(service.route(&out_of_range), natural);
        // A hinted submission still returns the exact answer (the merge
        // consults whatever shards the bounds demand).
        let r = service.submit(hinted).unwrap().wait().unwrap();
        assert!(!r.neighbors.is_empty());
        let stats = service.shutdown();
        assert_eq!(stats.per_shard[2].routed, 1);
    }

    #[test]
    fn local_traffic_routes_to_distinct_pools() {
        // Queries centered in each shard's MBR must route to that shard
        // and (for tight groups) be answered by it alone.
        let snap = sharded_snapshot(4000, 4, 74);
        let service = Service::start_sharded(Arc::clone(&snap), ServiceConfig::with_workers(4));
        for (s, mbr) in snap.directory().iter().enumerate() {
            let c = mbr.center();
            let g = QueryGroup::sum(vec![c, Point::new(c.x + 0.2, c.y + 0.2)]).unwrap();
            let req = QueryRequest::new(g, 1);
            assert_eq!(service.route(&req), s, "shard {s}");
            let r = service.submit(req).unwrap().wait().unwrap();
            assert_eq!(r.routing.primary as usize, s);
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, 4);
        for s in &stats.per_shard {
            assert_eq!(s.routed, 1, "shard {}", s.shard);
        }
        assert!(stats.single_shard_hits >= 3, "{stats:?}");
    }

    #[test]
    fn publish_sharded_swaps_generations() {
        let first = sharded_snapshot(800, 2, 75);
        let second = sharded_snapshot(1200, 2, 76);
        let service = Service::start_sharded(Arc::clone(&first), ServiceConfig::with_workers(2));
        assert_eq!(service.generation(), 1);
        assert_eq!(service.publish_sharded(Arc::clone(&second)), 2);
        assert!(Arc::ptr_eq(&service.sharded_snapshot(), &second));
        let r = service
            .submit(QueryRequest::new(random_group(4, 77), 2))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.generation, 2);
        service.shutdown();
    }

    #[test]
    #[should_panic(expected = "keep the shard count")]
    fn publish_sharded_rejects_shard_count_changes() {
        let service =
            Service::start_sharded(sharded_snapshot(500, 2, 78), ServiceConfig::with_workers(2));
        service.publish_sharded(sharded_snapshot(500, 3, 79));
    }

    #[test]
    fn try_publish_fails_after_shutdown_initiated() {
        let snap = sharded_snapshot(500, 2, 80);
        let service = Service::start_sharded(Arc::clone(&snap), ServiceConfig::with_workers(2));
        assert_eq!(
            service.try_publish_sharded(Arc::clone(&snap)),
            Some(2),
            "publish before close must succeed"
        );
        service.initiate_shutdown();
        let generation = service.generation();
        assert_eq!(service.try_publish_sharded(Arc::clone(&snap)), None);
        assert_eq!(service.generation(), generation, "generation advanced");
        service.shutdown();
    }
}
