//! The auto-refresh driver: mutate → per-shard refreeze → publish on a
//! policy, so a mutating sharded tree serves continuously.
//!
//! PR 4 provided the primitives (incremental [`gnn_rtree::RTree::refreeze`]
//! and [`Service`] hot-swap); this module closes the loop. A
//! [`RefreshDriver`] owns the mutable [`ShardedTree`] on a background
//! thread, receives [`Update`]s through an unbounded channel, applies them
//! to the owning shards, and — whenever any shard's dirty fraction crosses
//! [`RefreshPolicy::dirty_fraction`] (or the applied-update backlog exceeds
//! [`RefreshPolicy::max_pending`]) — refreezes the dirty shards
//! incrementally, reuses the `Arc` of every clean one, and publishes the
//! result to the service. Query traffic never blocks: publish is the
//! existing between-queries hot swap.
//!
//! Shutdown hygiene is part of the contract:
//!
//! * [`RefreshDriver::join`] closes the update channel, lets the thread
//!   drain and apply every accepted update, performs one final flush
//!   refresh (so no accepted update is silently dropped), joins the thread,
//!   and hands back the tree plus the whole published snapshot history — or
//!   a typed [`DriverError`] when the driver panicked or a refreeze failed,
//!   instead of re-panicking in the caller;
//! * publishes go through [`Service::try_publish_sharded`], which is
//!   serialized against [`Service::initiate_shutdown`] — once the service
//!   has closed its queues, a racing refresh is *dropped*, never published:
//!   the service generation cannot advance after the close (pinned by the
//!   workspace `refresh_driver` test).
//!
//! Determinism stays pinnable under continuous refresh: when the driver is
//! the only publisher, generation `g` serves exactly
//! `outcome.snapshots[g - 1]`, so every tagged response can be checked
//! against the sequential cross-shard reference on that snapshot.

use crate::{duration_nanos, lock_unpoisoned, Service};
use gnn_geom::{Point, PointId};
use gnn_rtree::{LeafEntry, ShardedSnapshot, ShardedTree};
use gnn_telemetry::FlightEventKind;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a [`RefreshDriver`] run ended without an outcome. Returned by
/// [`RefreshDriver::join`] — driver failure is a typed result at the join
/// point, not a re-panic in the caller's thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverError {
    /// The driver thread panicked. The tree and snapshot history died with
    /// it; the service keeps serving its last published generation.
    Panicked,
    /// The driver's `cycle`-th refreeze (1-based) failed and the run was
    /// aborted. Injectable through
    /// [`FaultPlan::fail_refreeze`](crate::FaultPlan::fail_refreeze) on the
    /// service's configuration.
    RefreezeFailed {
        /// The 1-based refreeze cycle that failed.
        cycle: u64,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Panicked => f.write_str("refresh driver thread panicked"),
            DriverError::RefreezeFailed { cycle } => {
                write!(f, "refreeze cycle {cycle} failed; driver aborted")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// One mutation for the [`RefreshDriver`] to apply to its sharded tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Update {
    /// Insert a point (routed to its owning shard by Hilbert key).
    Insert(LeafEntry),
    /// Remove a point by id + position (same routing; a miss is counted,
    /// not an error — deletes of never-inserted points are a caller bug the
    /// stats make visible).
    Remove {
        /// Id of the point to remove.
        id: PointId,
        /// Its position (shard routing and R-tree deletion need it).
        point: Point,
    },
}

/// When the [`RefreshDriver`] refreezes and publishes.
#[derive(Debug, Clone, Copy)]
pub struct RefreshPolicy {
    /// Refresh once any shard's dirty page fraction reaches this value.
    /// Lower = fresher snapshots, more refreeze work; `0.1` mirrors the
    /// ~10% dirty point where incremental refreeze shows its best
    /// advantage (see `BENCH_refreeze.json`).
    pub dirty_fraction: f64,
    /// Refresh after at most this many applied-but-unpublished updates,
    /// regardless of dirty fractions (bounds staleness on huge shards
    /// where single updates barely move the fraction).
    pub max_pending: usize,
}

impl Default for RefreshPolicy {
    fn default() -> Self {
        RefreshPolicy {
            dirty_fraction: 0.1,
            max_pending: 4096,
        }
    }
}

/// Counters of one driver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Updates applied to the sharded tree.
    pub applied: u64,
    /// Remove updates whose point was not present.
    pub missed_removes: u64,
    /// Snapshots published to the service.
    pub published: u64,
    /// Refreshes dropped because the service had initiated shutdown.
    pub skipped_publishes: u64,
}

/// One refreeze + publish cycle of a driver run: what triggered it, what
/// it cost, and whether it reached the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishRecord {
    /// The 1-based refreeze cycle this record describes.
    pub cycle: u64,
    /// The generation the publish produced, or `None` when the refresh
    /// was dropped because the service had initiated shutdown.
    pub generation: Option<u64>,
    /// Wall time of the incremental `refreeze_all` for this cycle.
    pub refreeze: Duration,
    /// The maximum per-shard dirty fraction at the moment the cycle
    /// triggered (what the [`RefreshPolicy`] reacted to — or below
    /// threshold for `max_pending`-triggered and final-flush cycles).
    pub dirty_fraction: f64,
}

/// What a finished driver hands back.
#[derive(Debug)]
pub struct RefreshOutcome {
    /// The mutable sharded tree, with every accepted update applied.
    pub tree: ShardedTree,
    /// Every snapshot this driver served through, starting with the one
    /// published when the driver started. When the driver was the only
    /// publisher, `snapshots[g - 1]` is exactly the snapshot of service
    /// generation `g` — the handle determinism tests pin responses
    /// against.
    pub snapshots: Vec<Arc<ShardedSnapshot>>,
    /// Run counters.
    pub stats: RefreshStats,
    /// Per-cycle publish history: refreeze duration and
    /// dirty-fraction-at-trigger for every completed cycle, in cycle
    /// order (`publishes.len()` = completed cycles; entries with
    /// `generation: None` were dropped at shutdown).
    pub publishes: Vec<PublishRecord>,
}

/// A background thread running the mutate → refreeze → publish lifecycle
/// against a [`Service`]. See the module docs.
#[derive(Debug)]
pub struct RefreshDriver {
    tx: Option<Sender<Update>>,
    handle: Option<JoinHandle<Result<RefreshOutcome, DriverError>>>,
    /// Mirrors the thread's counters for cheap mid-run observation.
    applied: Arc<Mutex<RefreshStats>>,
}

impl RefreshDriver {
    /// Starts the driver over `tree`, publishing refreshes into `service`.
    /// The service keeps serving its current snapshot until the first
    /// policy-triggered publish; callers normally start the service on
    /// `tree.freeze_all()` so generation 1 matches the tree's initial
    /// state.
    ///
    /// # Panics
    ///
    /// Panics when the tree's shard count differs from the service's, or
    /// when the policy is degenerate (non-positive `dirty_fraction` or
    /// zero `max_pending`).
    pub fn start(tree: ShardedTree, service: Arc<Service>, policy: RefreshPolicy) -> RefreshDriver {
        assert_eq!(
            tree.shard_count(),
            service.shard_count(),
            "driver tree and service must agree on the shard count"
        );
        assert!(
            policy.dirty_fraction > 0.0,
            "dirty fraction must be positive"
        );
        assert!(policy.max_pending > 0, "max pending must be positive");
        let (tx, rx) = channel();
        let applied = Arc::new(Mutex::new(RefreshStats::default()));
        let shared = Arc::clone(&applied);
        let handle = std::thread::Builder::new()
            .name("gnn-refresh-driver".into())
            .spawn(move || driver_loop(tree, &service, policy, &rx, &shared))
            .expect("spawn refresh driver thread");
        RefreshDriver {
            tx: Some(tx),
            handle: Some(handle),
            applied,
        }
    }

    /// Enqueues an update for the driver to apply. Returns `false` once the
    /// driver thread is gone (after [`RefreshDriver::join`], a refreeze
    /// failure, or a driver panic).
    pub fn apply(&self, update: Update) -> bool {
        self.tx.as_ref().is_some_and(|tx| tx.send(update).is_ok())
    }

    /// Current run counters (the thread updates them after every apply and
    /// publish cycle).
    pub fn stats(&self) -> RefreshStats {
        *lock_unpoisoned(&self.applied)
    }

    /// Closes the update channel, waits for the thread to drain every
    /// accepted update and perform its final flush refresh, and returns the
    /// tree, the published snapshot history, and the counters — or a typed
    /// [`DriverError`] when the driver panicked or a refreeze cycle failed.
    /// Never panics on driver failure: the error surfaces as a value at
    /// the one place a caller can handle it.
    pub fn join(mut self) -> Result<RefreshOutcome, DriverError> {
        self.tx.take();
        match self.handle.take().expect("driver joined once").join() {
            Ok(outcome) => outcome,
            Err(_) => Err(DriverError::Panicked),
        }
    }
}

impl Drop for RefreshDriver {
    /// Dropping without [`RefreshDriver::shutdown`] closes the channel so
    /// the thread drains and exits on its own; it is detached, not joined
    /// (drop must not block), and its outcome is discarded.
    fn drop(&mut self) {
        self.tx.take();
    }
}

fn apply_update(tree: &mut ShardedTree, update: Update, stats: &mut RefreshStats) {
    match update {
        Update::Insert(entry) => {
            tree.insert(entry);
        }
        Update::Remove { id, point } => {
            if !tree.remove(id, point) {
                stats.missed_removes += 1;
            }
        }
    }
    stats.applied += 1;
}

fn driver_loop(
    mut tree: ShardedTree,
    service: &Service,
    policy: RefreshPolicy,
    rx: &Receiver<Update>,
    shared: &Mutex<RefreshStats>,
) -> Result<RefreshOutcome, DriverError> {
    let mut last = service.sharded_snapshot();
    let mut snapshots = vec![Arc::clone(&last)];
    let mut stats = RefreshStats::default();
    let mut publishes = Vec::new();
    let mut pending = 0usize;
    // Refreeze cycles attempted, 1-based: the fault plan's coordinate for
    // injected refreeze failures.
    let mut cycles = 0u64;
    // Blocking receive: the policy is purely update-driven (pending counts
    // and dirty fractions only change when an update arrives), and a close
    // of the channel wakes the receiver immediately — an idle driver costs
    // nothing.
    while let Ok(update) = rx.recv() {
        apply_update(&mut tree, update, &mut stats);
        pending += 1;
        // Drain whatever else is already queued before deciding — one
        // policy check per burst, not per update.
        while let Ok(update) = rx.try_recv() {
            apply_update(&mut tree, update, &mut stats);
            pending += 1;
        }
        if pending >= policy.max_pending || tree.max_dirty_fraction(&last) >= policy.dirty_fraction
        {
            cycles += 1;
            if let Err(e) = refresh(
                &tree,
                service,
                &mut last,
                &mut snapshots,
                &mut stats,
                &mut publishes,
                cycles,
            ) {
                *lock_unpoisoned(shared) = stats;
                return Err(e);
            }
            pending = 0;
        }
        *lock_unpoisoned(shared) = stats;
    }
    if pending > 0 {
        // Final flush: every accepted update reaches a snapshot — unless
        // the service already closed, in which case the refresh is
        // *dropped*, never published (`try_publish_sharded` is serialized
        // against the close).
        cycles += 1;
        if let Err(e) = refresh(
            &tree,
            service,
            &mut last,
            &mut snapshots,
            &mut stats,
            &mut publishes,
            cycles,
        ) {
            *lock_unpoisoned(shared) = stats;
            return Err(e);
        }
    }
    *lock_unpoisoned(shared) = stats;
    Ok(RefreshOutcome {
        tree,
        snapshots,
        stats,
        publishes,
    })
}

/// One refreeze + publish cycle. `last` chains: even a dropped (post-close)
/// refresh keeps the incremental baseline current for the next cycle. A
/// cycle the service's [`FaultPlan`](crate::FaultPlan) marks as failing
/// aborts the run with [`DriverError::RefreezeFailed`] — the injected
/// stand-in for a refreeze hitting resource exhaustion.
#[allow(clippy::too_many_arguments)]
fn refresh(
    tree: &ShardedTree,
    service: &Service,
    last: &mut Arc<ShardedSnapshot>,
    snapshots: &mut Vec<Arc<ShardedSnapshot>>,
    stats: &mut RefreshStats,
    publishes: &mut Vec<PublishRecord>,
    cycle: u64,
) -> Result<(), DriverError> {
    if service.config().fault_plan.refreeze_fails(cycle) {
        return Err(DriverError::RefreezeFailed { cycle });
    }
    // What the policy saw when this cycle triggered — recorded before the
    // refreeze resets the dirty state.
    let dirty_fraction = tree.max_dirty_fraction(last);
    let flight = service.driver_flight();
    flight.record(FlightEventKind::RefreezeStart, cycle);
    let refreeze0 = Instant::now();
    let next = Arc::new(tree.refreeze_all(last));
    let refreeze = refreeze0.elapsed();
    flight.record(FlightEventKind::RefreezeEnd, duration_nanos(refreeze));
    let generation = service.try_publish_sharded(Arc::clone(&next));
    if generation.is_some() {
        snapshots.push(Arc::clone(&next));
        stats.published += 1;
    } else {
        stats.skipped_publishes += 1;
    }
    publishes.push(PublishRecord {
        cycle,
        generation,
        refreeze,
        dirty_fraction,
    });
    *last = next;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use gnn_rtree::RTreeParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn entries(n: usize, seed: u64) -> Vec<LeafEntry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                LeafEntry::new(
                    PointId(i as u64),
                    Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0),
                )
            })
            .collect()
    }

    fn start_pair(
        n: usize,
        shards: usize,
        seed: u64,
        policy: RefreshPolicy,
    ) -> (Arc<Service>, RefreshDriver) {
        let tree = ShardedTree::build(RTreeParams::with_capacity(8), entries(n, seed), shards);
        let snapshot = Arc::new(tree.freeze_all());
        let service = Arc::new(Service::start_sharded(
            snapshot,
            ServiceConfig::with_workers(shards),
        ));
        let driver = RefreshDriver::start(tree, Arc::clone(&service), policy);
        (service, driver)
    }

    #[test]
    fn updates_flow_into_published_snapshots() {
        let policy = RefreshPolicy {
            dirty_fraction: 1e-9, // every burst publishes
            ..RefreshPolicy::default()
        };
        let (service, driver) = start_pair(500, 2, 1, policy);
        for i in 0..50u64 {
            assert!(driver.apply(Update::Insert(LeafEntry::new(
                PointId(10_000 + i),
                Point::new(i as f64, i as f64),
            ))));
        }
        // Wait until every update landed in a published snapshot.
        let mut spins = 0;
        while service.sharded_snapshot().len() < 550 {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 100_000_000, "updates never published");
        }
        let outcome = driver.join().expect("driver run failed");
        assert_eq!(outcome.stats.applied, 50);
        assert_eq!(outcome.stats.missed_removes, 0);
        assert!(outcome.stats.published >= 1);
        // Every completed cycle left a publish record, cycles in order,
        // each with the generation its publish produced.
        assert_eq!(
            outcome.publishes.len() as u64,
            outcome.stats.published + outcome.stats.skipped_publishes
        );
        for (i, record) in outcome.publishes.iter().enumerate() {
            assert_eq!(record.cycle, i as u64 + 1);
            assert!(record.generation.is_some(), "no shutdown raced this run");
            assert!(record.dirty_fraction >= 0.0);
        }
        assert_eq!(outcome.tree.len(), 550);
        assert_eq!(
            outcome.snapshots.last().unwrap().len(),
            550,
            "final snapshot must hold every accepted update"
        );
        // Driver was the only publisher: history aligns with generations.
        assert_eq!(
            service.generation(),
            outcome.snapshots.len() as u64,
            "snapshots[g-1] must be generation g"
        );
        Arc::try_unwrap(service)
            .expect("driver released its handle")
            .shutdown();
    }

    #[test]
    fn shutdown_flushes_below_threshold_updates() {
        let policy = RefreshPolicy {
            dirty_fraction: 0.99, // never triggers on its own
            max_pending: 1_000_000,
        };
        let (service, driver) = start_pair(400, 2, 2, policy);
        for i in 0..10u64 {
            driver.apply(Update::Insert(LeafEntry::new(
                PointId(20_000 + i),
                Point::new(1.0 + i as f64, 2.0),
            )));
        }
        let outcome = driver.join().expect("driver run failed");
        assert_eq!(outcome.stats.applied, 10);
        assert_eq!(outcome.stats.published, 1, "exactly the final flush");
        // The flush cycle is in the history: dirty fraction below the
        // (never-triggering) policy threshold, publish accepted.
        assert_eq!(outcome.publishes.len(), 1);
        let record = outcome.publishes[0];
        assert_eq!(record.cycle, 1);
        assert!(record.generation.is_some());
        assert!(record.dirty_fraction < 0.99);
        assert_eq!(outcome.snapshots.last().unwrap().len(), 410);
        assert_eq!(service.sharded_snapshot().len(), 410);
        Arc::try_unwrap(service)
            .expect("driver released its handle")
            .shutdown();
    }

    #[test]
    fn missed_removes_are_counted_not_fatal() {
        let (service, driver) = start_pair(100, 2, 3, RefreshPolicy::default());
        driver.apply(Update::Remove {
            id: PointId(999_999),
            point: Point::new(3.0, 3.0),
        });
        let outcome = driver.join().expect("driver run failed");
        assert_eq!(outcome.stats.missed_removes, 1);
        assert_eq!(outcome.tree.len(), 100);
        drop(service);
    }

    #[test]
    fn apply_fails_cleanly_after_shutdown() {
        let (service, driver) = start_pair(100, 2, 4, RefreshPolicy::default());
        let stats = driver.stats();
        assert_eq!(stats.applied, 0);
        let outcome = driver.join().expect("driver run failed");
        assert_eq!(outcome.stats.published, 0, "no updates, no publishes");
        drop(service);
    }
}
