//! The unified submission surface: one entry point, one error enum.
//!
//! Everything a caller can hand to [`Service::submit`](crate::Service::submit)
//! is (convertible into) a [`Submission`]: a prepared [`QueryRequest`], a
//! builder-described group query ([`Submission::group`]), or a
//! shared-traversal batch ([`Submission::batch`]). Each builder accepts
//! `.blocking(false)` to turn backpressure into a
//! [`SubmitError::QueueFull`] instead of blocking — the open-loop
//! load-generator contract — and every failure mode comes back through the
//! single exhaustive [`SubmitError`].
//!
//! ```
//! use gnn_geom::Point;
//! use gnn_service::Submission;
//!
//! // A group query with explicit k; unset fields use the service defaults.
//! let single = Submission::group(vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]).k(4);
//! # let _ = single;
//! ```

use gnn_core::{
    Aggregate, Algo, NetworkQuery, QueryGroup, QueryGroupError, QueryRequest, QueryResponse,
};
use gnn_geom::Point;
use std::fmt;
use std::time::Duration;

/// A typed per-query failure delivered **through a [`ResponseHandle`]**:
/// the request was accepted, but the serving engine could not (or chose
/// not to) produce a result for it. Other requests — including the rest of
/// the same batch — are unaffected; a query error is a response, never a
/// lost reply.
///
/// [`ResponseHandle`]: crate::ResponseHandle
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The worker panicked while executing this query. The supervisor
    /// answers the in-flight request with this error, respawns the
    /// worker's state (fresh cursors + scratch), and keeps serving — pool
    /// capacity is invariant under panics. Counted in the fault ledger
    /// ([`FaultLedger::panics`](crate::FaultLedger)).
    WorkerPanicked,
    /// The request's [`deadline`](QueryRequest::deadline) had already
    /// expired when a worker dequeued it, so it was shed instead of
    /// executed — the bounded-staleness contract under overload. Counted
    /// in [`FaultLedger::shed`](crate::FaultLedger).
    DeadlineExceeded,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::WorkerPanicked => f.write_str("worker panicked while executing the query"),
            QueryError::DeadlineExceeded => f.write_str("request deadline expired in queue; shed"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Why a submission (or a wait on its handle) failed. The single error
/// surface of the serving API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// A non-blocking submission found the routed shard's bounded queue
    /// full — the backpressure signal an open-loop load generator counts
    /// as a drop. Retry, shed, or submit blocking.
    QueueFull,
    /// The service refused the submission because
    /// [`initiate_shutdown`](crate::Service::initiate_shutdown) /
    /// [`shutdown`](crate::Service::shutdown) already closed the queues —
    /// the orderly-drain signal. Requests accepted before the close are
    /// still answered.
    Shutdown,
    /// A worker disappeared before answering: the reply channel died with
    /// responses still owed. With supervision this indicates a dropped
    /// job during teardown (or a legacy dead handle), not a panic — a
    /// panic inside a query comes back as
    /// [`SubmitError::Query`]`(`[`QueryError::WorkerPanicked`]`)` instead.
    WorkerDied,
    /// Superseded by the [`SubmitError::Shutdown`] / [`SubmitError::WorkerDied`]
    /// split; no longer produced.
    #[deprecated(
        since = "0.7.0",
        note = "split into `SubmitError::Shutdown` (orderly drain) and \
                `SubmitError::WorkerDied` (failure); no longer produced"
    )]
    WorkerGone,
    /// The submission's point set does not form a valid query group
    /// (e.g. empty).
    BadGroup(QueryGroupError),
    /// The request was accepted but answered with a typed per-query error
    /// (panic or deadline shed) instead of a result.
    Query(QueryError),
}

impl SubmitError {
    /// Whether the error means the service (or the serving worker) is
    /// unavailable — an orderly [`SubmitError::Shutdown`] or a
    /// [`SubmitError::WorkerDied`] failure — as opposed to backpressure,
    /// a bad request, or a typed per-query error.
    #[allow(deprecated)]
    pub fn is_unavailable(&self) -> bool {
        matches!(
            self,
            SubmitError::Shutdown | SubmitError::WorkerDied | SubmitError::WorkerGone
        )
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("request queue is full"),
            SubmitError::Shutdown => f.write_str("service is shutting down"),
            SubmitError::WorkerDied => f.write_str("worker terminated without responding"),
            #[allow(deprecated)]
            SubmitError::WorkerGone => f.write_str("worker gone"),
            SubmitError::BadGroup(e) => write!(f, "invalid query group: {e}"),
            SubmitError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<QueryGroupError> for SubmitError {
    fn from(e: QueryGroupError) -> Self {
        SubmitError::BadGroup(e)
    }
}

impl From<QueryError> for SubmitError {
    fn from(e: QueryError) -> Self {
        SubmitError::Query(e)
    }
}

/// A batch wait that could not complete — but did not lose what it had:
/// every response received before the failure is handed back in
/// `received`, indexed by submission order.
///
/// Returned by [`ResponseHandle::wait_all`](crate::ResponseHandle::wait_all)
/// when any request of the batch resolved to a typed [`QueryError`] or the
/// reply channel died. `error` is the **first** failure in submission
/// order; a `None` slot in `received` belongs to a request that failed or
/// was never answered.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitError {
    /// Successful responses collected before/around the failure, indexed
    /// by submission position (`received[i]` answers request `i`).
    pub received: Vec<Option<QueryResponse>>,
    /// The first failure, in submission order: a typed per-query error
    /// ([`SubmitError::Query`]) or [`SubmitError::WorkerDied`].
    pub error: SubmitError,
}

impl fmt::Display for WaitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let got = self.received.iter().filter(|s| s.is_some()).count();
        write!(
            f,
            "batch wait failed ({got}/{} responses received): {}",
            self.received.len(),
            self.error
        )
    }
}

impl std::error::Error for WaitError {}

/// One unit of work for [`Service::submit`](crate::Service::submit): a
/// single request, a group query, or a shared-traversal batch.
///
/// Constructed through [`Submission::request`], the [`Submission::group`] /
/// [`Submission::batch`] builders, or `From<QueryRequest>` — and
/// [`Service::submit`](crate::Service::submit) takes `impl Into<Submission>`,
/// so builders and plain requests are passed directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    pub(crate) kind: SubmissionKind,
    pub(crate) blocking: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SubmissionKind {
    /// A fully prepared request.
    Request(QueryRequest),
    /// A group query resolved against the service defaults at submit time.
    Group(GroupSubmission),
    /// A shared-traversal batch (see [`gnn_core::batch`]): routed into
    /// per-shard sub-batches, each executed as one Hilbert-ordered pass.
    Batch(Vec<QueryRequest>),
}

impl Submission {
    /// A submission of one prepared [`QueryRequest`], blocking on
    /// backpressure (equivalent to the `From<QueryRequest>` impl; chain
    /// [`Submission::blocking`] to change that).
    pub fn request(request: QueryRequest) -> Submission {
        Submission {
            kind: SubmissionKind::Request(request),
            blocking: true,
        }
    }

    /// Starts a group-query submission from raw points. `k`, aggregate,
    /// algorithm, and shard hint are optional — unset fields fall back to
    /// the service's configured defaults at submission time; an invalid
    /// point set fails with [`SubmitError::BadGroup`].
    pub fn group(points: Vec<Point>) -> GroupSubmission {
        GroupSubmission {
            points,
            k: None,
            aggregate: None,
            algo: Algo::Auto,
            shard_hint: None,
            deadline: None,
            trace: false,
            network: None,
            blocking: true,
        }
    }

    /// Starts a batch submission: the requests are routed to their shards,
    /// each shard's sub-batch is executed as **one shared-traversal pass**
    /// (Hilbert-ordered, upper-level pages read once — see
    /// [`gnn_core::batch`]), and the returned handle yields every response,
    /// indexed by submission order
    /// ([`ResponseHandle::wait_all`](crate::ResponseHandle::wait_all)).
    pub fn batch(requests: impl IntoIterator<Item = QueryRequest>) -> BatchSubmission {
        BatchSubmission {
            requests: requests.into_iter().collect(),
            blocking: true,
        }
    }

    /// Sets whether the submission blocks on a full queue (`true`, the
    /// default) or fails fast with [`SubmitError::QueueFull`] (`false`).
    pub fn blocking(mut self, blocking: bool) -> Submission {
        self.blocking = blocking;
        self
    }

    /// Sets a queue-wait deadline on every request of this submission (see
    /// [`QueryRequest::deadline`]): a request still queued when the budget
    /// expires is shed with [`QueryError::DeadlineExceeded`] instead of
    /// executed.
    pub fn deadline(mut self, deadline: Duration) -> Submission {
        match &mut self.kind {
            SubmissionKind::Request(request) => request.deadline = Some(deadline),
            SubmissionKind::Group(group) => group.deadline = Some(deadline),
            SubmissionKind::Batch(requests) => {
                for request in requests {
                    request.deadline = Some(deadline);
                }
            }
        }
        self
    }
}

impl From<QueryRequest> for Submission {
    fn from(request: QueryRequest) -> Self {
        Submission::request(request)
    }
}

/// Builder for a group-query [`Submission`] (see [`Submission::group`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSubmission {
    points: Vec<Point>,
    k: Option<usize>,
    aggregate: Option<Aggregate>,
    algo: Algo,
    shard_hint: Option<u32>,
    deadline: Option<Duration>,
    trace: bool,
    network: Option<NetworkQuery>,
    blocking: bool,
}

impl GroupSubmission {
    /// Sets `k` (defaults to the service's `default_k`).
    pub fn k(mut self, k: usize) -> GroupSubmission {
        self.k = Some(k);
        self
    }

    /// Sets the aggregate function (defaults to the service's
    /// `default_aggregate`).
    pub fn aggregate(mut self, aggregate: Aggregate) -> GroupSubmission {
        self.aggregate = Some(aggregate);
        self
    }

    /// Pins the algorithm instead of planner routing.
    pub fn algo(mut self, algo: Algo) -> GroupSubmission {
        self.algo = algo;
        self
    }

    /// Sets a shard-routing hint (see [`QueryRequest::shard_hint`]).
    pub fn shard_hint(mut self, shard: u32) -> GroupSubmission {
        self.shard_hint = Some(shard);
        self
    }

    /// Sets a queue-wait deadline (see [`QueryRequest::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> GroupSubmission {
        self.deadline = Some(deadline);
        self
    }

    /// Requests a per-query trace on the response (see
    /// [`QueryRequest::trace`]).
    pub fn trace(mut self) -> GroupSubmission {
        self.trace = true;
        self
    }

    /// Attaches a network-domain payload so a network-backed service
    /// answers under shortest-path distance (see [`QueryRequest::network`]).
    /// [`NetworkQuery::snapped`] snaps the group's points onto the graph;
    /// [`NetworkQuery::at_vertices`] pins explicit source vertices.
    pub fn network(mut self, network: NetworkQuery) -> GroupSubmission {
        self.network = Some(network);
        self
    }

    /// Sets whether the submission blocks on a full queue (`true`, the
    /// default) or fails fast with [`SubmitError::QueueFull`] (`false`).
    pub fn blocking(mut self, blocking: bool) -> GroupSubmission {
        self.blocking = blocking;
        self
    }

    /// Resolves the builder into a prepared request, filling unset fields
    /// from the service defaults.
    pub(crate) fn resolve(
        self,
        default_k: usize,
        default_aggregate: Aggregate,
    ) -> Result<QueryRequest, QueryGroupError> {
        let group =
            QueryGroup::with_aggregate(self.points, self.aggregate.unwrap_or(default_aggregate))?;
        Ok(QueryRequest {
            group,
            k: self.k.unwrap_or(default_k),
            algo: self.algo,
            shard_hint: self.shard_hint,
            deadline: self.deadline,
            trace: self.trace,
            network: self.network,
        })
    }
}

/// Builder for a batch [`Submission`] (see [`Submission::batch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSubmission {
    requests: Vec<QueryRequest>,
    blocking: bool,
}

impl BatchSubmission {
    /// Sets whether the submission blocks on a full queue (`true`, the
    /// default) or fails fast with [`SubmitError::QueueFull`] (`false`).
    ///
    /// For a non-blocking batch, sub-batches already queued when a later
    /// sub-batch hits a full queue still execute; their responses are
    /// discarded along with the failed handle. Treat a non-blocking batch
    /// rejection as dropping the whole batch.
    pub fn blocking(mut self, blocking: bool) -> BatchSubmission {
        self.blocking = blocking;
        self
    }

    /// Sets a queue-wait deadline on every request of the batch (see
    /// [`QueryRequest::deadline`]). Sheds apply per request: expired
    /// members are answered with
    /// [`QueryError::DeadlineExceeded`] while the rest of the sub-batch
    /// still executes as one shared pass.
    pub fn deadline(mut self, deadline: Duration) -> BatchSubmission {
        for request in &mut self.requests {
            request.deadline = Some(deadline);
        }
        self
    }
}

impl From<GroupSubmission> for Submission {
    fn from(group: GroupSubmission) -> Self {
        // Deferred resolution: the builder is carried whole so the service
        // can fill unset fields from its configured defaults at submit
        // time.
        Submission {
            blocking: group.blocking,
            kind: SubmissionKind::Group(group),
        }
    }
}

impl From<BatchSubmission> for Submission {
    fn from(batch: BatchSubmission) -> Self {
        Submission {
            blocking: batch.blocking,
            kind: SubmissionKind::Batch(batch.requests),
        }
    }
}
