//! The unified submission surface: one entry point, one error enum.
//!
//! Everything a caller can hand to [`Service::submit`](crate::Service::submit)
//! is (convertible into) a [`Submission`]: a prepared [`QueryRequest`], a
//! builder-described group query ([`Submission::group`]), or a
//! shared-traversal batch ([`Submission::batch`]). Each builder accepts
//! `.blocking(false)` to turn backpressure into a
//! [`SubmitError::QueueFull`] instead of blocking — the open-loop
//! load-generator contract — and every failure mode comes back through the
//! single exhaustive [`SubmitError`].
//!
//! ```
//! use gnn_geom::Point;
//! use gnn_service::Submission;
//!
//! // A group query with explicit k; unset fields use the service defaults.
//! let single = Submission::group(vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]).k(4);
//! # let _ = single;
//! ```

use gnn_core::{Aggregate, Algo, QueryGroup, QueryGroupError, QueryRequest};
use gnn_geom::Point;
use std::fmt;

/// Why a submission (or a wait on its handle) failed. The single error
/// surface of the serving API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// A non-blocking submission found the routed shard's bounded queue
    /// full — the backpressure signal an open-loop load generator counts
    /// as a drop. Retry, shed, or submit blocking.
    QueueFull,
    /// The service is shutting down, the routed pool's workers have all
    /// died (a worker dies only by panicking inside a query), or a worker
    /// disappeared before answering. Results for other requests are
    /// unaffected.
    WorkerGone,
    /// The submission's point set does not form a valid query group
    /// (e.g. empty).
    BadGroup(QueryGroupError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("request queue is full"),
            SubmitError::WorkerGone => f.write_str("worker terminated without responding"),
            SubmitError::BadGroup(e) => write!(f, "invalid query group: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<QueryGroupError> for SubmitError {
    fn from(e: QueryGroupError) -> Self {
        SubmitError::BadGroup(e)
    }
}

/// One unit of work for [`Service::submit`](crate::Service::submit): a
/// single request, a group query, or a shared-traversal batch.
///
/// Constructed through [`Submission::request`], the [`Submission::group`] /
/// [`Submission::batch`] builders, or `From<QueryRequest>` — and
/// [`Service::submit`](crate::Service::submit) takes `impl Into<Submission>`,
/// so builders and plain requests are passed directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    pub(crate) kind: SubmissionKind,
    pub(crate) blocking: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SubmissionKind {
    /// A fully prepared request.
    Request(QueryRequest),
    /// A group query resolved against the service defaults at submit time.
    Group(GroupSubmission),
    /// A shared-traversal batch (see [`gnn_core::batch`]): routed into
    /// per-shard sub-batches, each executed as one Hilbert-ordered pass.
    Batch(Vec<QueryRequest>),
}

impl Submission {
    /// A submission of one prepared [`QueryRequest`], blocking on
    /// backpressure (equivalent to the `From<QueryRequest>` impl; chain
    /// [`Submission::blocking`] to change that).
    pub fn request(request: QueryRequest) -> Submission {
        Submission {
            kind: SubmissionKind::Request(request),
            blocking: true,
        }
    }

    /// Starts a group-query submission from raw points. `k`, aggregate,
    /// algorithm, and shard hint are optional — unset fields fall back to
    /// the service's configured defaults at submission time; an invalid
    /// point set fails with [`SubmitError::BadGroup`].
    pub fn group(points: Vec<Point>) -> GroupSubmission {
        GroupSubmission {
            points,
            k: None,
            aggregate: None,
            algo: Algo::Auto,
            shard_hint: None,
            blocking: true,
        }
    }

    /// Starts a batch submission: the requests are routed to their shards,
    /// each shard's sub-batch is executed as **one shared-traversal pass**
    /// (Hilbert-ordered, upper-level pages read once — see
    /// [`gnn_core::batch`]), and the returned handle yields every response,
    /// indexed by submission order
    /// ([`ResponseHandle::wait_all`](crate::ResponseHandle::wait_all)).
    pub fn batch(requests: impl IntoIterator<Item = QueryRequest>) -> BatchSubmission {
        BatchSubmission {
            requests: requests.into_iter().collect(),
            blocking: true,
        }
    }

    /// Sets whether the submission blocks on a full queue (`true`, the
    /// default) or fails fast with [`SubmitError::QueueFull`] (`false`).
    pub fn blocking(mut self, blocking: bool) -> Submission {
        self.blocking = blocking;
        self
    }
}

impl From<QueryRequest> for Submission {
    fn from(request: QueryRequest) -> Self {
        Submission::request(request)
    }
}

/// Builder for a group-query [`Submission`] (see [`Submission::group`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSubmission {
    points: Vec<Point>,
    k: Option<usize>,
    aggregate: Option<Aggregate>,
    algo: Algo,
    shard_hint: Option<u32>,
    blocking: bool,
}

impl GroupSubmission {
    /// Sets `k` (defaults to the service's `default_k`).
    pub fn k(mut self, k: usize) -> GroupSubmission {
        self.k = Some(k);
        self
    }

    /// Sets the aggregate function (defaults to the service's
    /// `default_aggregate`).
    pub fn aggregate(mut self, aggregate: Aggregate) -> GroupSubmission {
        self.aggregate = Some(aggregate);
        self
    }

    /// Pins the algorithm instead of planner routing.
    pub fn algo(mut self, algo: Algo) -> GroupSubmission {
        self.algo = algo;
        self
    }

    /// Sets a shard-routing hint (see [`QueryRequest::shard_hint`]).
    pub fn shard_hint(mut self, shard: u32) -> GroupSubmission {
        self.shard_hint = Some(shard);
        self
    }

    /// Sets whether the submission blocks on a full queue (`true`, the
    /// default) or fails fast with [`SubmitError::QueueFull`] (`false`).
    pub fn blocking(mut self, blocking: bool) -> GroupSubmission {
        self.blocking = blocking;
        self
    }

    /// Resolves the builder into a prepared request, filling unset fields
    /// from the service defaults.
    pub(crate) fn resolve(
        self,
        default_k: usize,
        default_aggregate: Aggregate,
    ) -> Result<QueryRequest, QueryGroupError> {
        let group =
            QueryGroup::with_aggregate(self.points, self.aggregate.unwrap_or(default_aggregate))?;
        Ok(QueryRequest {
            group,
            k: self.k.unwrap_or(default_k),
            algo: self.algo,
            shard_hint: self.shard_hint,
        })
    }
}

/// Builder for a batch [`Submission`] (see [`Submission::batch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSubmission {
    requests: Vec<QueryRequest>,
    blocking: bool,
}

impl BatchSubmission {
    /// Sets whether the submission blocks on a full queue (`true`, the
    /// default) or fails fast with [`SubmitError::QueueFull`] (`false`).
    ///
    /// For a non-blocking batch, sub-batches already queued when a later
    /// sub-batch hits a full queue still execute; their responses are
    /// discarded along with the failed handle. Treat a non-blocking batch
    /// rejection as dropping the whole batch.
    pub fn blocking(mut self, blocking: bool) -> BatchSubmission {
        self.blocking = blocking;
        self
    }
}

impl From<GroupSubmission> for Submission {
    fn from(group: GroupSubmission) -> Self {
        // Deferred resolution: the builder is carried whole so the service
        // can fill unset fields from its configured defaults at submit
        // time.
        Submission {
            blocking: group.blocking,
            kind: SubmissionKind::Group(group),
        }
    }
}

impl From<BatchSubmission> for Submission {
    fn from(batch: BatchSubmission) -> Self {
        Submission {
            blocking: batch.blocking,
            kind: SubmissionKind::Batch(batch.requests),
        }
    }
}
