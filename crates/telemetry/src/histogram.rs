//! Fixed-bucket latency histogram with lock-free recording.
//!
//! Workers record every query's wall time concurrently, so the histogram is
//! an array of atomic counters over **log-linear** buckets: values 0–3 ns
//! map to their own buckets, and every further power of two is split into
//! four sub-buckets, giving a worst-case relative quantile error of 25%
//! across the full `u64` nanosecond range with a fixed 252-slot footprint
//! (2 KiB per worker). No allocation, no locking, no floating point on the
//! record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per power of two (4 → ≤25% relative error).
const SUB: u64 = 4;
/// Total bucket count; covers every `u64` nanosecond value exactly: the
/// largest reachable index is `4·(63−1)+3 = 251`.
pub const BUCKETS: usize = 252;

/// Bucket index of a nanosecond value.
fn bucket_of(nanos: u64) -> usize {
    if nanos < SUB {
        return nanos as usize;
    }
    let msb = 63 - nanos.leading_zeros() as usize; // 2..=63
    let sub = ((nanos >> (msb - 2)) & (SUB - 1)) as usize;
    SUB as usize * (msb - 1) + sub
}

/// Inclusive upper bound (in nanoseconds) of bucket `idx` — what quantiles
/// report, so they never understate a latency.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let msb = idx / SUB as usize + 1;
    let sub = (idx % SUB as usize) as u128;
    // Start of the next sub-bucket, minus one (in u128: the top bucket's
    // bound would overflow u64).
    let upper = ((SUB as u128 + sub + 1) << (msb - 2)) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// A concurrent fixed-bucket latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one latency sample. Lock-free; callable from any thread.
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// An owned snapshot of a [`LatencyHistogram`] (possibly merged across
/// workers) with quantile accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    counts: Vec<u64>,
}

impl LatencySnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> Self {
        LatencySnapshot {
            counts: vec![0; BUCKETS],
        }
    }

    /// Component-wise sum with another snapshot (cross-worker aggregation).
    pub fn merge(&mut self, other: &LatencySnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `q`-quantile (`0 < q <= 1`) as a conservative upper bound: the
    /// inclusive upper edge of the bucket containing the `ceil(q·count)`-th
    /// smallest sample.
    ///
    /// The empty histogram has **no** quantiles: every accessor returns the
    /// defined sentinel `None` (never a garbage bucket bound), which is
    /// what lets callers distinguish "no traffic yet" from "all samples in
    /// bucket zero" (a recorded 0 ns sample legitimately yields
    /// `Some(Duration::ZERO)`). When every sample landed in one bucket,
    /// every quantile is that bucket's upper bound.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q) && q > 0.0, "quantile q in (0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Duration::from_nanos(bucket_upper(idx)));
            }
        }
        unreachable!("counts summed to total")
    }

    /// Median latency (upper-bounded, see [`LatencySnapshot::quantile`]).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Option<Duration> {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        // Every boundary maps into the bucket whose upper bound admits it,
        // and bucket indices are monotone in the value.
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            15,
            16,
            100,
            1_000,
            1_000_000,
            1_000_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_of(v);
            assert!(idx >= last, "bucket index not monotone at {v}");
            assert!(
                idx == BUCKETS - 1 || v <= bucket_upper(idx),
                "value {v} above its bucket's upper bound {}",
                bucket_upper(idx)
            );
            last = idx;
        }
    }

    #[test]
    fn upper_bound_error_is_within_a_quarter() {
        for shift in 2..60u64 {
            for sub in 0..4u64 {
                let v = (1u64 << shift) + sub * (1u64 << (shift - 2));
                let upper = bucket_upper(bucket_of(v));
                assert!(upper >= v);
                assert!(
                    (upper - v) as f64 <= v as f64 * 0.25 + 1.0,
                    "error too large at {v}: upper {upper}"
                );
            }
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 99 samples at ~1µs, one at ~1ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(1));
        }
        h.record(Duration::from_millis(1));
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let p50 = s.p50().unwrap();
        assert!(p50 >= Duration::from_micros(1) && p50 < Duration::from_micros(2));
        let p99 = s.p99().unwrap();
        assert!(p99 < Duration::from_micros(2), "p99 is the 99th of 100");
        let p100 = s.quantile(1.0).unwrap();
        assert!(p100 >= Duration::from_millis(1));
    }

    #[test]
    fn merge_adds_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(10));
        b.record(Duration::from_secs(1));
        let mut m = LatencySnapshot::empty();
        m.merge(&a.snapshot());
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert!(m.quantile(1.0).unwrap() >= Duration::from_secs(1));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        // Zero recorded samples: every percentile accessor must return the
        // defined `None` sentinel — never a bucket bound of an empty
        // distribution.
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert!(s.p50().is_none());
        assert!(s.p95().is_none());
        assert!(s.p99().is_none());
        assert!(s.quantile(1.0).is_none());
        assert!(s.quantile(f64::MIN_POSITIVE).is_none());
        // Merging empties stays empty.
        let mut m = LatencySnapshot::empty();
        m.merge(&s);
        assert!(m.p99().is_none());
    }

    #[test]
    fn single_bucket_distribution_pins_every_quantile() {
        // All samples in one bucket: p50 = p95 = p99 = that bucket's upper
        // bound, including the degenerate zero-latency bucket.
        for nanos in [0u64, 3, 1_000] {
            let h = LatencyHistogram::new();
            for _ in 0..17 {
                h.record(Duration::from_nanos(nanos));
            }
            let s = h.snapshot();
            let want = Duration::from_nanos(bucket_upper(bucket_of(nanos)));
            for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(s.quantile(q), Some(want), "q={q} nanos={nanos}");
            }
            assert!(s.quantile(1.0).unwrap() >= Duration::from_nanos(nanos));
        }
    }

    #[test]
    fn single_sample_distribution() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(7));
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.p50(), s.p99());
        assert!(s.p50().unwrap() >= Duration::from_micros(7));
    }

    use proptest::prelude::*;

    /// Nanosecond values spanning every bucket regime: the four unit
    /// buckets, the log-linear middle, and the saturating top (`u64::MAX`
    /// itself is covered by the unit tests above — the vendored range
    /// strategy is half-open).
    fn nanos() -> impl Strategy<Value = u64> {
        prop_oneof![0u64..16, 16u64..1_000_000, 1_000_000u64..u64::MAX,]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Bucket round-trip: every value's bucket upper bound admits the
        /// value, and re-bucketing the bound lands in the same bucket
        /// (`bucket_index(value) → bucket_bound` is a closure).
        #[test]
        fn bucket_round_trip(v in nanos()) {
            let idx = bucket_of(v);
            prop_assert!(idx < BUCKETS);
            let upper = bucket_upper(idx);
            prop_assert!(upper >= v, "value {} above bound {}", v, upper);
            prop_assert_eq!(bucket_of(upper), idx, "bound re-buckets elsewhere");
            // Conservative error bound: ≤ 25% relative (+1 for the tiny buckets).
            prop_assert!((upper - v) as f64 <= v as f64 * 0.25 + 1.0);
        }

        /// Bucket indices and upper bounds are monotone in the value, so
        /// quantiles can scan buckets without reordering anomalies.
        #[test]
        fn bucket_monotonicity(a in nanos(), b in nanos()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_of(lo) <= bucket_of(hi));
            prop_assert!(bucket_upper(bucket_of(lo)) <= bucket_upper(bucket_of(hi)));
        }

        /// A quantile is the bound of a bucket that actually holds samples,
        /// and at least `ceil(q·n)` samples sit at or below it — i.e. it
        /// never understates the true percentile.
        #[test]
        fn quantile_is_a_real_bucket_bound(
            samples in prop::collection::vec(0u64..1_000_000, 1..200),
            q in 0.01f64..1.0,
        ) {
            let h = LatencyHistogram::new();
            for &s in &samples {
                h.record(Duration::from_nanos(s));
            }
            let snap = h.snapshot();
            let got = snap.quantile(q).expect("non-empty").as_nanos() as u64;
            prop_assert!(snap.counts[bucket_of(got)] > 0);
            // Rank guarantee: at least ceil(q*n) samples are <= the result.
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let below = samples.iter().filter(|&&s| s <= got).count();
            prop_assert!(below >= rank, "only {} of {} samples <= {}", below, samples.len(), got);
        }
    }
}
