//! # gnn-telemetry — observability primitives for the GNN serving stack
//!
//! A std-only crate holding the pieces the serving layers (`gnn-service`,
//! its refresh driver, and the benches) use to *see* themselves:
//!
//! * [`LatencyHistogram`] / [`LatencySnapshot`] — the lock-free 252-bucket
//!   log-linear latency histogram (≤ 25% relative quantile error, 2 KiB
//!   per instance, no allocation or locking on the record path);
//! * [`StageHistograms`] / [`StageSnapshot`] — per-stage decomposition of
//!   the end-to-end latency (queue wait / execution / reply, plus the
//!   shed-wait distribution of dropped requests);
//! * [`FlightRecorder`] / [`FlightLog`] — fixed-capacity lock-free ring
//!   buffers of structured serving events ([`FlightEventKind`]) with
//!   monotonic timestamps and explicit drop counters, merged into a
//!   time-ordered postmortem view.
//!
//! Everything here is deliberately mechanism, not policy: this crate knows
//! nothing about queries, shards, or snapshots — it provides the recording
//! primitives, and `gnn-service` decides what to record where. The one
//! shared convention is the **epoch**: rings whose events will be merged
//! must be constructed with the same epoch `Instant`, so their timestamps
//! share an origin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod recorder;
mod stages;

pub use histogram::{LatencyHistogram, LatencySnapshot, BUCKETS};
pub use recorder::{
    FlightEvent, FlightEventKind, FlightLog, FlightRecorder, RingSnapshot, SOURCE_CONTROL,
    SOURCE_DRIVER,
};
pub use stages::{StageHistograms, StageSnapshot};
