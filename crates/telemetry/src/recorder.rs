//! The flight recorder: fixed-capacity lock-free ring buffers of
//! structured serving events, merged into a time-ordered postmortem view.
//!
//! Each producer (a worker thread, the refresh driver, the publish path)
//! owns one [`FlightRecorder`] ring. Recording is a handful of atomic
//! stores — no locks, no allocation — so it can sit on the serving hot
//! path. When the ring is full the **oldest** events are overwritten and
//! counted in an explicit drop counter: a postmortem always holds the most
//! recent `capacity` events per producer, and always says how much history
//! it lost. [`FlightLog::merge`] collects any number of ring snapshots
//! into one timeline ordered by monotonic timestamp (nanoseconds since a
//! shared epoch `Instant`), which is what a crash/shed investigation
//! actually reads: "what happened, across all workers, in the 50 ms before
//! that panic?".
//!
//! Concurrency contract: a ring is designed for a **single producer**
//! (SPSC: the owning thread writes, an aggregator thread snapshots).
//! Writes are nevertheless safe under accidental producer concurrency — a
//! slot is claimed with a compare-exchange on its sequence word, so a
//! writer that finds its slot still mid-write by a lapped predecessor
//! drops its own event (counted) instead of tearing the slot. Readers
//! validate the sequence word before *and* after reading a slot, so a
//! snapshot taken under live traffic skips slots being rewritten rather
//! than returning torn events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Source id conventionally used for publish-path events (the snapshot
/// slot's control ring) in a merged [`FlightLog`].
pub const SOURCE_CONTROL: u32 = u32::MAX;
/// Source id conventionally used for refresh-driver events in a merged
/// [`FlightLog`].
pub const SOURCE_DRIVER: u32 = u32::MAX - 1;

/// What happened. The vocabulary of the serving stack's flight recorder;
/// each kind's payload meaning is documented on the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A job entered a shard queue. Timestamp is the submission instant
    /// (recorded retroactively by the worker that dequeued it, which is
    /// what keeps the ring single-producer); payload = requests in the job
    /// (1 for singles).
    Enqueued,
    /// A worker picked the job up. Payload = queue wait in nanoseconds.
    Dequeued,
    /// A request was shed at dequeue (deadline already expired). Payload =
    /// how long it had waited, in nanoseconds.
    Shed,
    /// Query (or batch pass) execution started. Payload = requests in the
    /// pass.
    ExecStart,
    /// Execution completed normally. Payload = execution nanoseconds.
    ExecEnd,
    /// Execution panicked (injected or real). Payload = the worker's
    /// 1-based attempt number.
    Panicked,
    /// The worker rebuilt its serving state after a panic. Payload = 0.
    Respawned,
    /// A refreeze cycle started (refresh driver). Payload = 1-based cycle.
    RefreezeStart,
    /// A refreeze cycle finished. Payload = refreeze nanoseconds.
    RefreezeEnd,
    /// A snapshot generation was published. Payload = the new generation.
    Published,
}

impl FlightEventKind {
    /// Stable short name (used by text renderings of a postmortem).
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::Enqueued => "enqueued",
            FlightEventKind::Dequeued => "dequeued",
            FlightEventKind::Shed => "shed",
            FlightEventKind::ExecStart => "exec_start",
            FlightEventKind::ExecEnd => "exec_end",
            FlightEventKind::Panicked => "panicked",
            FlightEventKind::Respawned => "respawned",
            FlightEventKind::RefreezeStart => "refreeze_start",
            FlightEventKind::RefreezeEnd => "refreeze_end",
            FlightEventKind::Published => "published",
        }
    }

    fn code(self) -> u64 {
        match self {
            FlightEventKind::Enqueued => 0,
            FlightEventKind::Dequeued => 1,
            FlightEventKind::Shed => 2,
            FlightEventKind::ExecStart => 3,
            FlightEventKind::ExecEnd => 4,
            FlightEventKind::Panicked => 5,
            FlightEventKind::Respawned => 6,
            FlightEventKind::RefreezeStart => 7,
            FlightEventKind::RefreezeEnd => 8,
            FlightEventKind::Published => 9,
        }
    }

    fn from_code(code: u64) -> FlightEventKind {
        match code {
            0 => FlightEventKind::Enqueued,
            1 => FlightEventKind::Dequeued,
            2 => FlightEventKind::Shed,
            3 => FlightEventKind::ExecStart,
            4 => FlightEventKind::ExecEnd,
            5 => FlightEventKind::Panicked,
            6 => FlightEventKind::Respawned,
            7 => FlightEventKind::RefreezeStart,
            8 => FlightEventKind::RefreezeEnd,
            _ => FlightEventKind::Published,
        }
    }
}

/// One recorded event: a monotonic timestamp (nanoseconds since the
/// recorder's shared epoch), the producing source (worker id,
/// [`SOURCE_CONTROL`], or [`SOURCE_DRIVER`]), the kind, its payload, and
/// the per-ring sequence number (total events recorded before it on the
/// same ring — the tiebreaker that keeps a merge stable at equal
/// timestamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the epoch `Instant` the recorder was built with.
    pub ts_nanos: u64,
    /// Producer id (worker index; `SOURCE_*` for non-worker rings).
    pub source: u32,
    /// What happened.
    pub kind: FlightEventKind,
    /// Kind-specific payload (see [`FlightEventKind`]).
    pub payload: u64,
    /// Per-ring sequence number (0-based ticket).
    pub seq: u64,
}

/// Payloads are packed with the kind into one atomic word: kind in the top
/// byte, payload in the low 56 bits (2^56 ns ≈ 2.3 years — no real
/// duration or generation exceeds it; larger values saturate).
const PAYLOAD_BITS: u32 = 56;
const PAYLOAD_MASK: u64 = (1 << PAYLOAD_BITS) - 1;

fn pack(kind: FlightEventKind, payload: u64) -> u64 {
    (kind.code() << PAYLOAD_BITS) | payload.min(PAYLOAD_MASK)
}

fn unpack(data: u64) -> (FlightEventKind, u64) {
    (
        FlightEventKind::from_code(data >> PAYLOAD_BITS),
        data & PAYLOAD_MASK,
    )
}

/// One slot: a sequence word guarding a timestamp and a packed
/// kind+payload word. For ticket `t` the sequence is `2t + 1` while the
/// writer is inside the slot and `2t + 2` once the event is readable
/// (0 = never written).
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    data: AtomicU64,
}

/// A fixed-capacity, overwrite-oldest ring of [`FlightEvent`]s. See the
/// module docs for the concurrency contract. Capacity 0 disables the
/// recorder entirely: [`FlightRecorder::record`] returns after one branch
/// and nothing is ever retained.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Slot>,
    /// Total events ever recorded (monotone ticket counter).
    head: AtomicU64,
    source: u32,
    epoch: Instant,
}

impl FlightRecorder {
    /// A ring of `capacity` slots for producer `source`, with timestamps
    /// measured from `epoch` (share one epoch across every ring whose
    /// events will be merged).
    pub fn new(source: u32, capacity: usize, epoch: Instant) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                    data: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            source,
            epoch,
        }
    }

    /// Whether this recorder retains anything (capacity > 0).
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// The epoch timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records an event stamped "now".
    pub fn record(&self, kind: FlightEventKind, payload: u64) {
        self.record_at(Instant::now(), kind, payload);
    }

    /// Records an event with an explicit timestamp — how a worker logs an
    /// `Enqueued` event retroactively at dequeue time (the submitter's
    /// clock reading, the worker's ring: the ring stays single-producer).
    pub fn record_at(&self, at: Instant, kind: FlightEventKind, payload: u64) {
        if self.slots.is_empty() {
            return;
        }
        let ts =
            u64::try_from(at.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX);
        let cap = self.slots.len() as u64;
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % cap) as usize];
        // Claim the slot: its sequence must still be the *completed* state
        // of the ticket one lap behind (or 0 on the first lap). A failure
        // means a lapped writer is still inside the slot — drop this event
        // instead of tearing it (it stays counted via `head`).
        let expected = if ticket >= cap {
            2 * (ticket - cap) + 2
        } else {
            0
        };
        if slot
            .seq
            .compare_exchange(
                expected,
                2 * ticket + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return;
        }
        slot.ts.store(ts, Ordering::Relaxed);
        slot.data.store(pack(kind, payload), Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// A point-in-time copy of the ring: the retained events **oldest
    /// first** (in ticket order) plus the exact count of events recorded
    /// but no longer readable (evicted by overwrite, or skipped mid-write).
    pub fn snapshot(&self) -> RingSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = if cap == 0 {
            head
        } else {
            head.saturating_sub(cap)
        };
        let mut events = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let want = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let data = slot.data.load(Ordering::Relaxed);
            // Re-validate: a concurrent writer claiming this slot would
            // have bumped the sequence before touching ts/data.
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let (kind, payload) = unpack(data);
            events.push(FlightEvent {
                ts_nanos: ts,
                source: self.source,
                kind,
                payload,
                seq: ticket,
            });
        }
        let dropped = head - events.len() as u64;
        RingSnapshot {
            source: self.source,
            events,
            dropped,
        }
    }
}

/// One ring's snapshot: retained events oldest-first plus the drop count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSnapshot {
    /// The producing source id.
    pub source: u32,
    /// Retained events in ticket (recording) order.
    pub events: Vec<FlightEvent>,
    /// Events recorded on this ring but not retained (overwritten by newer
    /// ones, or skipped because a snapshot raced the writer).
    pub dropped: u64,
}

/// The merged postmortem view: events from any number of rings, ordered by
/// timestamp (ties broken by source then per-ring sequence), plus the
/// total history lost to ring overwrites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightLog {
    /// Time-ordered events across all merged rings.
    pub events: Vec<FlightEvent>,
    /// Total events dropped across all merged rings.
    pub dropped: u64,
}

impl FlightLog {
    /// An empty log.
    pub fn empty() -> FlightLog {
        FlightLog::default()
    }

    /// Merges ring snapshots into one time-ordered log.
    pub fn merge(rings: impl IntoIterator<Item = RingSnapshot>) -> FlightLog {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in rings {
            events.extend(ring.events);
            dropped += ring.dropped;
        }
        events.sort_by_key(|e| (e.ts_nanos, e.source, e.seq));
        FlightLog { events, dropped }
    }

    /// The last `n` events (the tail a crash dump prints).
    pub fn tail(&self, n: usize) -> &[FlightEvent] {
        &self.events[self.events.len().saturating_sub(n)..]
    }

    /// One line per event: `ts_us source kind payload` — the postmortem
    /// text form (timestamps in microseconds since the epoch).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>12.1}us  src={:<10} {:<14} {}\n",
                e.ts_nanos as f64 / 1e3,
                if e.source == SOURCE_CONTROL {
                    "control".to_string()
                } else if e.source == SOURCE_DRIVER {
                    "driver".to_string()
                } else {
                    format!("worker-{}", e.source)
                },
                e.kind.name(),
                e.payload,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_and_snapshots_in_order() {
        let epoch = Instant::now();
        let r = FlightRecorder::new(3, 8, epoch);
        assert!(r.enabled());
        r.record_at(
            epoch + Duration::from_nanos(10),
            FlightEventKind::Enqueued,
            1,
        );
        r.record_at(
            epoch + Duration::from_nanos(20),
            FlightEventKind::Dequeued,
            10,
        );
        r.record_at(
            epoch + Duration::from_nanos(30),
            FlightEventKind::ExecStart,
            1,
        );
        let snap = r.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events[0].kind, FlightEventKind::Enqueued);
        assert_eq!(snap.events[0].ts_nanos, 10);
        assert_eq!(snap.events[2].kind, FlightEventKind::ExecStart);
        assert!(snap.events.iter().all(|e| e.source == 3));
        // Tickets are consecutive from 0.
        assert_eq!(
            snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops_exactly() {
        let epoch = Instant::now();
        let r = FlightRecorder::new(0, 4, epoch);
        for i in 0..10u64 {
            r.record_at(
                epoch + Duration::from_nanos(100 + i),
                FlightEventKind::ExecEnd,
                i,
            );
        }
        let snap = r.snapshot();
        // Oldest-first eviction: exactly the last `capacity` events remain,
        // in recording order, and the drop counter is exact.
        assert_eq!(snap.dropped, 6);
        assert_eq!(
            snap.events.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(
            snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = FlightRecorder::new(0, 0, Instant::now());
        assert!(!r.enabled());
        r.record(FlightEventKind::Panicked, 7);
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn merge_orders_across_rings_by_timestamp() {
        let epoch = Instant::now();
        let a = FlightRecorder::new(0, 8, epoch);
        let b = FlightRecorder::new(1, 8, epoch);
        a.record_at(
            epoch + Duration::from_nanos(5),
            FlightEventKind::ExecStart,
            0,
        );
        b.record_at(
            epoch + Duration::from_nanos(1),
            FlightEventKind::Enqueued,
            0,
        );
        a.record_at(epoch + Duration::from_nanos(9), FlightEventKind::ExecEnd, 4);
        b.record_at(epoch + Duration::from_nanos(7), FlightEventKind::Shed, 6);
        let log = FlightLog::merge([a.snapshot(), b.snapshot()]);
        let kinds: Vec<_> = log.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlightEventKind::Enqueued,
                FlightEventKind::ExecStart,
                FlightEventKind::Shed,
                FlightEventKind::ExecEnd,
            ]
        );
        let ts: Vec<_> = log.events.iter().map(|e| e.ts_nanos).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "merged timeline must be time-ordered");
        assert_eq!(log.dropped, 0);
        assert_eq!(log.tail(2).len(), 2);
        assert_eq!(log.tail(2)[1].kind, FlightEventKind::ExecEnd);
        assert!(log.render().contains("shed"));
    }

    #[test]
    fn merged_timeline_stays_ordered_past_overflow() {
        // Two small rings, both pushed past capacity with interleaved
        // timestamps: the merge must stay time-ordered and the drop counts
        // must add up.
        let epoch = Instant::now();
        let a = FlightRecorder::new(0, 4, epoch);
        let b = FlightRecorder::new(1, 4, epoch);
        for i in 0..12u64 {
            a.record_at(
                epoch + Duration::from_nanos(2 * i),
                FlightEventKind::ExecEnd,
                i,
            );
            b.record_at(
                epoch + Duration::from_nanos(2 * i + 1),
                FlightEventKind::Dequeued,
                i,
            );
        }
        let log = FlightLog::merge([a.snapshot(), b.snapshot()]);
        assert_eq!(log.dropped, 16);
        assert_eq!(log.events.len(), 8);
        for pair in log.events.windows(2) {
            assert!(pair[0].ts_nanos <= pair[1].ts_nanos);
        }
        // Alternating sources (interleaved odd/even timestamps survive).
        for (i, e) in log.events.iter().enumerate() {
            assert_eq!(e.source as usize, i % 2);
        }
    }

    #[test]
    fn payload_saturates_at_56_bits() {
        let epoch = Instant::now();
        let r = FlightRecorder::new(0, 2, epoch);
        r.record_at(epoch, FlightEventKind::Published, u64::MAX);
        let snap = r.snapshot();
        assert_eq!(snap.events[0].payload, (1 << 56) - 1);
        assert_eq!(snap.events[0].kind, FlightEventKind::Published);
    }

    #[test]
    fn concurrent_snapshot_never_tears() {
        // A writer hammering a tiny ring while a reader snapshots: every
        // event a snapshot returns must be internally consistent (payload
        // equals the timestamp it was written with), never a torn mix.
        let epoch = Instant::now();
        let r = std::sync::Arc::new(FlightRecorder::new(0, 4, epoch));
        let w = std::sync::Arc::clone(&r);
        let writer = std::thread::spawn(move || {
            for i in 0..50_000u64 {
                w.record_at(epoch + Duration::from_nanos(i), FlightEventKind::ExecEnd, i);
            }
        });
        let mut checked = 0u64;
        while !writer.is_finished() {
            for e in r.snapshot().events {
                assert_eq!(e.ts_nanos, e.payload, "torn slot read");
                checked += 1;
            }
        }
        writer.join().unwrap();
        let final_snap = r.snapshot();
        assert_eq!(final_snap.events.len(), 4);
        assert_eq!(final_snap.dropped, 50_000 - 4);
        assert!(checked > 0 || final_snap.events.len() == 4);
    }
}
