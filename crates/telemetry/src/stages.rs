//! Stage-level latency decomposition: one lock-free histogram per serving
//! stage, so "was that p99 spike queue wait or execution?" has an answer.
//!
//! The end-to-end submit → response latency of a served query decomposes
//! into three stages, each recorded into its own [`LatencyHistogram`] on
//! the same 252-bucket log-linear design:
//!
//! * **queue wait** — submission until a worker dequeues the request
//!   (includes late-but-served queries, so deadline tuning sees the full
//!   wait distribution, not just the on-time part);
//! * **execution** — the algorithm itself (plus any injected latency);
//! * **reply** — building/sending the response after execution ends.
//!
//! A fourth histogram, **shed wait**, records how long *shed* requests had
//! waited when the worker dropped them — the other half of the
//! deadline-tuning picture (served queries tell you the wait you
//! tolerated; shed ones tell you the wait you refused).

use crate::histogram::{LatencyHistogram, LatencySnapshot};
use std::time::Duration;

/// Per-stage latency histograms (one writer side per worker).
#[derive(Debug, Default)]
pub struct StageHistograms {
    /// Submission → dequeue of served queries.
    pub queue_wait: LatencyHistogram,
    /// Execution wall time of served queries.
    pub execution: LatencyHistogram,
    /// Execution end → response sent.
    pub reply: LatencyHistogram,
    /// Submission → shed decision of requests shed at dequeue.
    pub shed_wait: LatencyHistogram,
}

impl StageHistograms {
    /// Four empty histograms.
    pub fn new() -> StageHistograms {
        StageHistograms::default()
    }

    /// Records one served query's full stage decomposition.
    pub fn record_served(&self, queue_wait: Duration, execution: Duration, reply: Duration) {
        self.queue_wait.record(queue_wait);
        self.execution.record(execution);
        self.reply.record(reply);
    }

    /// A point-in-time copy of all four histograms.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            queue_wait: self.queue_wait.snapshot(),
            execution: self.execution.snapshot(),
            reply: self.reply.snapshot(),
            shed_wait: self.shed_wait.snapshot(),
        }
    }
}

/// An owned snapshot of a [`StageHistograms`] set, mergeable across
/// workers. Each field exposes the usual `p50()`/`p95()`/`p99()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Submission → dequeue of served queries.
    pub queue_wait: LatencySnapshot,
    /// Execution wall time of served queries.
    pub execution: LatencySnapshot,
    /// Execution end → response sent.
    pub reply: LatencySnapshot,
    /// Submission → shed decision of shed requests.
    pub shed_wait: LatencySnapshot,
}

impl StageSnapshot {
    /// An all-empty snapshot (merge accumulator).
    pub fn empty() -> StageSnapshot {
        StageSnapshot {
            queue_wait: LatencySnapshot::empty(),
            execution: LatencySnapshot::empty(),
            reply: LatencySnapshot::empty(),
            shed_wait: LatencySnapshot::empty(),
        }
    }

    /// Component-wise merge with another snapshot.
    pub fn merge(&mut self, other: &StageSnapshot) {
        self.queue_wait.merge(&other.queue_wait);
        self.execution.merge(&other.execution);
        self.reply.merge(&other.reply);
        self.shed_wait.merge(&other.shed_wait);
    }

    /// `(name, snapshot)` pairs in stage order — what renderers iterate.
    pub fn named(&self) -> [(&'static str, &LatencySnapshot); 4] {
        [
            ("queue_wait", &self.queue_wait),
            ("execution", &self.execution),
            ("reply", &self.reply),
            ("shed_wait", &self.shed_wait),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_samples_land_in_all_three_stage_histograms() {
        let s = StageHistograms::new();
        for i in 1..=10u64 {
            s.record_served(
                Duration::from_micros(i),
                Duration::from_micros(10 * i),
                Duration::from_nanos(100),
            );
        }
        let snap = s.snapshot();
        assert_eq!(snap.queue_wait.count(), 10);
        assert_eq!(snap.execution.count(), 10);
        assert_eq!(snap.reply.count(), 10);
        assert_eq!(snap.shed_wait.count(), 0);
        // The decomposition is visible: execution dominates queue wait.
        assert!(snap.execution.p50().unwrap() > snap.queue_wait.p50().unwrap());
        assert!(snap.shed_wait.p99().is_none());
    }

    #[test]
    fn merge_is_component_wise() {
        let a = StageHistograms::new();
        let b = StageHistograms::new();
        a.record_served(
            Duration::from_micros(1),
            Duration::from_micros(2),
            Duration::from_nanos(50),
        );
        b.shed_wait.record(Duration::from_millis(3));
        let mut m = StageSnapshot::empty();
        m.merge(&a.snapshot());
        m.merge(&b.snapshot());
        assert_eq!(m.queue_wait.count(), 1);
        assert_eq!(m.shed_wait.count(), 1);
        assert!(m.shed_wait.p99().unwrap() >= Duration::from_millis(3));
        let names: Vec<_> = m.named().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["queue_wait", "execution", "reply", "shed_wait"]);
    }
}
