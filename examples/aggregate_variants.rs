//! Aggregate variants: SUM vs MAX vs MIN group nearest neighbors.
//!
//! The paper defines GNN over the SUM of distances and names other
//! aggregates as future work; this example shows the extension on a
//! delivery-dispatch scenario:
//!
//! * SUM  — minimise the fleet's total travel (fuel),
//! * MAX  — minimise the worst courier's travel (fairness / latency),
//! * MIN  — any courier close by (first responder).
//!
//! ```text
//! cargo run --example aggregate_variants
//! ```

use gnn::datasets::uniform_points;
use gnn::prelude::*;

fn main() {
    // P: 10 000 candidate depot locations.
    let ws = Rect::from_corners(0.0, 0.0, 100.0, 100.0);
    let depots = uniform_points(10_000, ws, 3);
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        depots
            .iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );

    // Q: five couriers, one far out east.
    let couriers = vec![
        Point::new(20.0, 30.0),
        Point::new(25.0, 35.0),
        Point::new(22.0, 28.0),
        Point::new(30.0, 40.0),
        Point::new(90.0, 80.0), // the outlier
    ];

    println!("Couriers: {couriers:?}\n");
    println!(
        "{:<4} {:>12} {:>26} {:>14}",
        "agg", "depot", "location", "aggregate dist"
    );
    for agg in [Aggregate::Sum, Aggregate::Max, Aggregate::Min] {
        let group = QueryGroup::with_aggregate(couriers.clone(), agg).expect("valid query group");
        let cursor = TreeCursor::unbuffered(&tree);
        // MBM supports all aggregates; SPM would reject MAX/MIN.
        let r = Mbm::best_first().k_gnn(&cursor, &group, 1);
        let best = r.best().expect("non-empty dataset");
        println!(
            "{:<4} {:>12} {:>26} {:>14.3}",
            agg.to_string(),
            best.id.to_string(),
            best.point.to_string(),
            best.dist
        );
    }

    println!();
    // The incremental stream: walk candidates in ascending SUM distance
    // until one satisfies a side constraint (here: inside the west half).
    let group = QueryGroup::sum(couriers).expect("valid");
    let cursor = TreeCursor::unbuffered(&tree);
    let mbm = Mbm::best_first();
    let mut stream = mbm.stream(&cursor, &group);
    let mut inspected = 0usize;
    let chosen = stream.by_ref().find(|n| {
        inspected += 1;
        n.point.x < 50.0
    });
    match chosen {
        Some(n) => println!(
            "First depot in the west half (by ascending total distance): {} at {} after inspecting {} candidates.",
            n.id, n.point, inspected
        ),
        None => println!("No depot in the west half."),
    }
}
