//! Disk-resident query sets: GCP vs F-MQM vs F-MBM (paper §4).
//!
//! When `Q` is too large for memory it lives in a paged file (F-MQM /
//! F-MBM) or in its own R-tree (GCP). This example scales a 3 000-point
//! query set into a sub-workspace of a 12 000-point dataset — a miniature
//! of the paper's §5.2 setup (kept small: GCP's cost explodes with scale,
//! exactly as §5.2 reports) — and prints each algorithm's I/O breakdown.
//!
//! ```text
//! cargo run --release --example disk_resident_queries
//! ```

use gnn::datasets::{centered_subrect, scale_points_to_rect, uniform_points};
use gnn::prelude::*;

fn main() {
    let ws = Rect::from_corners(0.0, 0.0, 1.0, 1.0);
    let data = uniform_points(12_000, ws, 11);
    let raw_query = uniform_points(3_000, ws, 12);
    // Query workspace: 8% of the data workspace, shared center (§5.2).
    let query = scale_points_to_rect(&raw_query, centered_subrect(ws, 0.08));

    println!(
        "P: {} points; Q: {} points in an 8% sub-workspace.\n",
        data.len(),
        query.len()
    );

    let data_tree = RTree::bulk_load(
        RTreeParams::default(),
        data.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );

    // --- F-MQM / F-MBM consume a Hilbert-sorted paged file of Q, split in
    //     memory-sized groups (here 1 000 points per group).
    let qfile = GroupedQueryFile::build_with(query.clone(), 64, 1_000);
    println!(
        "Query file: {} pages, {} groups of <= 1000 points.",
        qfile.file().page_count(),
        qfile.group_count()
    );

    let k = 8;
    println!(
        "\n{:<7} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "algo", "tree I/O", "Q I/O", "dist comps", "time (ms)", "best dist"
    );

    let mut results: Vec<(String, f64)> = Vec::new();
    for (name, algo) in [
        ("F-MQM", Box::new(Fmqm::new()) as Box<dyn FileGnnAlgorithm>),
        ("F-MBM", Box::new(Fmbm::best_first())),
    ] {
        let cursor = TreeCursor::with_buffer(&data_tree, 128);
        let fc = FileCursor::new(qfile.file());
        let r = algo.k_gnn(&cursor, &qfile, &fc, k, Aggregate::Sum);
        let best = r.best().expect("non-empty");
        println!(
            "{:<7} {:>10} {:>12} {:>12} {:>12.1} {:>12.4}",
            name,
            r.stats.data_tree.io,
            r.stats.query_file_pages,
            r.stats.dist_computations,
            r.stats.elapsed.as_secs_f64() * 1e3,
            best.dist
        );
        results.push((name.to_string(), best.dist));
    }

    // --- GCP needs Q indexed by its own R-tree.
    let query_tree = RTree::bulk_load(
        RTreeParams::default(),
        query
            .iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    let dc = TreeCursor::with_buffer(&data_tree, 128);
    let qc = TreeCursor::with_buffer(&query_tree, 128);
    let r = Gcp::new().k_gnn(&dc, &qc, k);
    let best = r.best().expect("non-empty");
    println!(
        "{:<7} {:>10} {:>12} {:>12} {:>12.1} {:>12.4}   (heap watermark {}{})",
        "GCP",
        r.stats.data_tree.io,
        r.stats.query_tree.io,
        r.stats.dist_computations,
        r.stats.elapsed.as_secs_f64() * 1e3,
        best.dist,
        r.stats.heap_watermark,
        if r.stats.aborted { ", ABORTED" } else { "" },
    );
    results.push(("GCP".into(), best.dist));

    // All exact algorithms must agree on the optimum.
    let reference = results[0].1;
    assert!(
        results.iter().all(|(_, d)| (d - reference).abs() < 1e-6),
        "algorithms disagree: {results:?}"
    );
    println!("\nAll three algorithms agree on the optimal meeting point.");
}
