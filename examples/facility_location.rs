//! Facility location over a realistic city: compare MQM, SPM and MBM on the
//! same queries and see the cost differences the paper's §5.1 reports.
//!
//! The data set is the synthetic PP substitute (24 493 clustered "populated
//! places"); each query is a group of user locations inside a neighborhood
//! MBR, exactly like the paper's workloads.
//!
//! ```text
//! cargo run --release --example facility_location
//! ```

use gnn::datasets::{pp_synthetic, query_workload, QuerySpec};
use gnn::prelude::*;

fn main() {
    println!("Building the PP-substitute dataset (24 493 places)...");
    let places = pp_synthetic(42);
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        places
            .iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    println!(
        "R*-tree: {} points, {} nodes, height {}.\n",
        tree.len(),
        tree.node_count(),
        tree.height()
    );

    // A workload of 20 queries: n = 16 users inside a random MBR covering
    // 8 % of the city.
    let workspace = tree.root_mbr();
    let queries = query_workload(
        workspace,
        QuerySpec {
            n: 16,
            area_fraction: 0.08,
        },
        20,
        7,
    );

    let algorithms: Vec<(&str, Box<dyn MemoryGnnAlgorithm>)> = vec![
        ("MQM", Box::new(Mqm::new())),
        ("SPM", Box::new(Spm::best_first())),
        ("MBM", Box::new(Mbm::best_first())),
    ];

    println!(
        "{:<6} {:>14} {:>16} {:>14}",
        "algo", "avg node acc", "avg dist comps", "avg time (us)"
    );
    let mut reference: Option<Vec<f64>> = None;
    for (name, algo) in &algorithms {
        let mut na = 0u64;
        let mut dc = 0u64;
        let mut us = 0u128;
        for q in &queries {
            let group = QueryGroup::sum(q.clone()).expect("valid group");
            let cursor = TreeCursor::with_buffer(&tree, 128);
            let r = algo.k_gnn(&cursor, &group, 4);
            na += r.stats.data_tree.io;
            dc += r.stats.dist_computations;
            us += r.stats.elapsed.as_micros();
            // All three algorithms are exact: they must agree.
            if reference.is_none() {
                reference = Some(r.distances());
            }
        }
        let q = queries.len() as u64;
        println!(
            "{:<6} {:>14.1} {:>16.1} {:>14.1}",
            name,
            na as f64 / q as f64,
            dc as f64 / q as f64,
            us as f64 / q as f64
        );
    }

    // Show one concrete answer with a weighted variant: the third user is a
    // group of 4 people sharing a car.
    let group_pts = queries[0].clone();
    let mut weights = vec![1.0; group_pts.len()];
    weights[2] = 4.0;
    let weighted = QueryGroup::weighted_sum(group_pts.clone(), weights).expect("valid");
    let plain = QueryGroup::sum(group_pts).expect("valid");
    let cursor = TreeCursor::unbuffered(&tree);
    let w_best = Mbm::best_first().k_gnn(&cursor, &weighted, 1);
    let p_best = Mbm::best_first().k_gnn(&cursor, &plain, 1);
    println!(
        "\nWeighted demo: plain best = {} (sum {:.4}), with user #3 counting x4 the best = {} (weighted sum {:.4}).",
        p_best.best().unwrap().id,
        p_best.best().unwrap().dist,
        w_best.best().unwrap().id,
        w_best.best().unwrap().dist,
    );
}
