//! Road-network GNN served end-to-end: a packed city snapshot behind
//! `Service::start_network`, answering trip-based meetup queries through
//! the same submission surface (worker pool, deadlines, telemetry) as the
//! Euclidean engine.
//!
//! Groups of friends, each partway through their own trip across the city,
//! ask for the meeting point minimising total remaining *network* travel.
//! Every query opts into stage tracing, so the tail of the run prints the
//! queue-wait / execution decomposition per query.
//!
//! ```text
//! cargo run --example meetup_server
//! ```

use gnn::datasets::{trip_workload, TripSpec};
use gnn::network::{NetworkSnapshot, RoadNetwork, VertexId};
use gnn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    // A 24x24 perturbed street grid, cafés on ~10% of intersections.
    let city = RoadNetwork::grid(24, 24, 0.25, 7);
    let mut rng = StdRng::seed_from_u64(11);
    let cafes: Vec<VertexId> = (0..city.vertex_count() as u32)
        .filter(|_| rng.gen::<f64>() < 0.10)
        .map(VertexId)
        .collect();
    println!(
        "City: {} intersections, {} street segments, {} cafés.",
        city.vertex_count(),
        city.edge_count(),
        cafes.len()
    );

    // Freeze once, serve forever: the CSR-packed snapshot + frozen café
    // index is the immutable artifact workers share.
    let backend = Arc::new(NetworkSnapshot::new(city.freeze(), cafes));

    // 24 groups of 4 friends, each friend sampled partway along their own
    // shortest-path trip (fixed seed — rerunning reproduces this exactly).
    let trips = trip_workload(
        &city,
        TripSpec {
            group_size: 4,
            max_retries: 8,
        },
        24,
        0xCAFE,
    );

    let service = Service::start_network(
        Arc::clone(&backend) as Arc<dyn NetworkBackend>,
        ServiceConfig::with_workers(2),
    );

    // Submit every group's query: k=3 candidate cafés, sources pinned to
    // the trip vertices (no snapping at serve time), stage tracing on.
    let handles: Vec<_> = trips
        .iter()
        .map(|trip| {
            let group = QueryGroup::sum(trip.points.clone()).expect("trip group");
            let request = QueryRequest::new(group, 3)
                .with_network(NetworkQuery::at_vertices(
                    trip.sources.iter().map(|v| v.0).collect(),
                ))
                .with_trace();
            service.submit(request).expect("submit meetup query")
        })
        .collect();

    println!();
    println!(
        "{:<6} {:<9} {:>8} {:>10} {:>9} {:>10} {:>11}",
        "group", "algo", "café", "total", "settled", "queue", "exec"
    );
    for (i, handle) in handles.into_iter().enumerate() {
        let r = handle.wait().expect("meetup query served");
        let best = r.neighbors.first().expect("at least one café");
        let trace = r.trace.expect("tracing was requested");
        println!(
            "{:<6} {:<9} {:>8} {:>10.3} {:>9} {:>9.1}us {:>9.1}us",
            i,
            format!("{:?}", r.choice),
            best.id.0,
            best.dist,
            r.stats.settled_vertices,
            trace.queue_wait.as_secs_f64() * 1e6,
            trace.execution.as_secs_f64() * 1e6,
        );
    }

    let stats = service.shutdown();
    println!();
    let us = |d: Option<std::time::Duration>| d.map_or(0.0, |d| d.as_secs_f64() * 1e6);
    println!(
        "Served {} queries; latency p50 {:.1}us, p99 {:.1}us.",
        stats.queries_served,
        us(stats.latency.p50()),
        us(stats.latency.p99()),
    );
}
