//! A miniature GNN query server: freeze a snapshot, start a 4-worker
//! service, and stream an open-loop §5.1 workload through it, reporting
//! throughput, tail latency, and the paper's node-access metric — then
//! replay a hotspot burst workload as shared-traversal batches and report
//! what the batch executor saved.
//!
//! ```text
//! cargo run --release --example query_server
//! ```
//!
//! The workload generator is *open-loop*: queries are scheduled on a
//! fixed-seed Poisson arrival process (here 2 000 q/s) and submitted at
//! their scheduled instants whether or not earlier queries have finished —
//! the honest way to measure a server's latency percentiles. If the server
//! falls behind, arrivals queue up (bounded by the service's queue depth)
//! and the tail percentiles show it. The batched phase uses
//! [`gnn::datasets::batched_arrivals`]: bursts of hotspot queries arriving
//! together, submitted through [`Submission::batch`] so each burst runs as
//! one Hilbert-ordered pass over shared upper-level pages.
//!
//! A final overload probe sheds a burst of zero-deadline queries, then the
//! report prints the telemetry the service kept while serving: per-stage
//! latency decomposition (queue-wait / execution / reply / shed-wait) and
//! the tail of the flight recorder's merged postmortem timeline.

use gnn::datasets::{batched_arrivals, open_loop_arrivals, pp_synthetic, HotspotSpec, QuerySpec};
use gnn::prelude::*;
use gnn::service::QueryError;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 1. Build the dataset index and freeze a read-optimized snapshot.
    let points: Vec<Point> = pp_synthetic(20_040_301).into_iter().step_by(10).collect();
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    let snapshot = Arc::new(tree.freeze());
    println!(
        "dataset: {} points, {} pages, height {}",
        snapshot.len(),
        snapshot.node_count(),
        snapshot.height()
    );

    // 2. Start the service: 4 workers, each with its own cursor + scratch.
    let config = ServiceConfig {
        workers: 4,
        queue_depth: 512,
        default_k: 8,
        ..ServiceConfig::default()
    };
    let service = Service::start(Arc::clone(&snapshot), config);
    println!("service: 4 workers, queue depth 512");

    // 3. A §5.1 workload on a Poisson arrival process: 200 queries of 64
    //    points in 8%-area MBRs, at a mean rate of 2 000 queries/sec.
    let spec = QuerySpec {
        n: 64,
        area_fraction: 0.08,
    };
    let arrivals = open_loop_arrivals(snapshot.root_mbr(), spec, 200, 2_000.0, 0xCAFE);

    let started = Instant::now();
    let mut handles = Vec::with_capacity(arrivals.len());
    for arrival in arrivals {
        let due = Duration::from_nanos(arrival.offset_nanos);
        if let Some(wait) = due.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        } // else: behind schedule — open loop, submit immediately
        let group = QueryGroup::sum(arrival.points).expect("workload query");
        handles.push(
            service
                .submit(QueryRequest::new(group, 8))
                .expect("query submitted"),
        );
    }
    let mut answered = 0usize;
    let mut total_na = 0u64;
    for handle in handles {
        let response = handle.wait().expect("query served");
        answered += response.neighbors.len().min(1);
        total_na += response.stats.data_tree.logical;
    }
    let wall = started.elapsed();

    // 4. A hotspot burst phase: 192 skewed queries arriving in bursts of
    //    16, each burst submitted as ONE shared-traversal batch.
    let hotspot = HotspotSpec {
        query: QuerySpec {
            n: 64,
            area_fraction: 0.01,
        },
        hotspots: 8,
        sigma: 0.02,
        background: 0.2,
    };
    let bursts = batched_arrivals(snapshot.root_mbr(), hotspot, 192, 16, 500.0, 0xCAFE);
    let burst_started = Instant::now();
    let mut batch_answered = 0usize;
    for burst in bursts {
        let due = Duration::from_nanos(burst.offset_nanos);
        if let Some(wait) = due.checked_sub(burst_started.elapsed()) {
            std::thread::sleep(wait);
        }
        let requests = burst
            .queries
            .into_iter()
            .map(|points| QueryRequest::new(QueryGroup::sum(points).expect("workload query"), 8));
        let responses = service
            .submit(Submission::batch(requests))
            .expect("batch submitted")
            .wait_all()
            .expect("batch served");
        batch_answered += responses.iter().filter(|r| !r.neighbors.is_empty()).count();
    }

    // 5. An overload probe: a burst of zero-deadline queries. Each is
    //    already expired by the time a worker dequeues it, so the service
    //    sheds the whole burst — feeding the shed-wait histogram and
    //    writing a `shed` tail into the flight recorder.
    let probe = open_loop_arrivals(snapshot.root_mbr(), spec, 32, 1.0e9, 0xBEEF);
    let probe_handles: Vec<_> = probe
        .into_iter()
        .map(|arrival| {
            let group = QueryGroup::sum(arrival.points).expect("workload query");
            service
                .submit(QueryRequest::new(group, 8).with_deadline(Duration::ZERO))
                .expect("query submitted")
        })
        .collect();
    let mut shed = 0usize;
    for handle in probe_handles {
        match handle.wait() {
            Err(SubmitError::Query(QueryError::DeadlineExceeded)) => shed += 1,
            Ok(_) => {}
            Err(e) => panic!("unexpected probe outcome: {e:?}"),
        }
    }

    // 6. Report.
    let stats = service.shutdown();
    let us = |d: Option<Duration>| d.map_or(0.0, |d| d.as_secs_f64() * 1e6);
    println!(
        "served {} queries ({} one-by-one in {:.3}s -> {:.0} queries/sec)",
        stats.queries_served,
        answered,
        wall.as_secs_f64(),
        answered as f64 / wall.as_secs_f64()
    );
    println!(
        "latency: p50 {:.0}µs  p95 {:.0}µs  p99 {:.0}µs",
        us(stats.latency.p50()),
        us(stats.latency.p95()),
        us(stats.latency.p99())
    );
    println!(
        "cost: {:.1} node accesses / query ({} total, one-by-one phase)",
        total_na as f64 / answered as f64,
        total_na
    );
    println!(
        "batches: {} executed, mean size {:.1}, shared reads saved {:.1}% \
         ({} unique vs {} as-if-sequential pages)",
        stats.batches,
        stats.mean_batch_size().unwrap_or(0.0),
        stats.shared_read_savings().unwrap_or(0.0) * 100.0,
        stats.batch_unique_pages,
        stats.batch_sequential_pages
    );
    for w in &stats.per_worker {
        println!(
            "  worker {}: {} queries, {} NA, busy {:.1}ms",
            w.worker,
            w.queries,
            w.node_accesses,
            w.busy.as_secs_f64() * 1e3
        );
    }
    println!("overload probe: {shed}/32 zero-deadline queries shed");
    println!("stage decomposition:");
    for (name, s) in stats.stages.named() {
        println!(
            "  {:<10} p50 {:>7.0}µs  p95 {:>7.0}µs  p99 {:>7.0}µs  (n={})",
            name,
            us(s.p50()),
            us(s.p95()),
            us(s.p99()),
            s.count()
        );
    }
    println!(
        "flight recorder tail ({} events kept, {} dropped):",
        stats.flight.events.len(),
        stats.flight.dropped
    );
    let tail = FlightLog {
        events: stats.flight.tail(12).to_vec(),
        dropped: 0,
    };
    print!("{}", tail.render());

    assert_eq!(answered, 200, "every query must return results");
    assert_eq!(
        batch_answered, 192,
        "every batched query must return results"
    );
    assert_eq!(shed, 32, "every zero-deadline probe query must be shed");
    assert_eq!(stats.stages.shed_wait.count(), 32);
}
