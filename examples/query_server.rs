//! A miniature GNN query server: freeze a snapshot, start a 4-worker
//! service, and stream an open-loop §5.1 workload through it, reporting
//! throughput, tail latency, and the paper's node-access metric.
//!
//! ```text
//! cargo run --release --example query_server
//! ```
//!
//! The workload generator is *open-loop*: queries are scheduled on a
//! fixed-seed Poisson arrival process (here 2 000 q/s) and submitted at
//! their scheduled instants whether or not earlier queries have finished —
//! the honest way to measure a server's latency percentiles. If the server
//! falls behind, arrivals queue up (bounded by the service's queue depth)
//! and the tail percentiles show it.

use gnn::datasets::{open_loop_arrivals, pp_synthetic, QuerySpec};
use gnn::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 1. Build the dataset index and freeze a read-optimized snapshot.
    let points: Vec<Point> = pp_synthetic(20_040_301).into_iter().step_by(10).collect();
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    let snapshot = Arc::new(tree.freeze());
    println!(
        "dataset: {} points, {} pages, height {}",
        snapshot.len(),
        snapshot.node_count(),
        snapshot.height()
    );

    // 2. Start the service: 4 workers, each with its own cursor + scratch.
    let config = ServiceConfig {
        workers: 4,
        queue_depth: 512,
        default_k: 8,
        ..ServiceConfig::default()
    };
    let service = Service::start(Arc::clone(&snapshot), config);
    println!("service: 4 workers, queue depth 512");

    // 3. A §5.1 workload on a Poisson arrival process: 200 queries of 64
    //    points in 8%-area MBRs, at a mean rate of 2 000 queries/sec.
    let spec = QuerySpec {
        n: 64,
        area_fraction: 0.08,
    };
    let arrivals = open_loop_arrivals(snapshot.root_mbr(), spec, 200, 2_000.0, 0xCAFE);

    let started = Instant::now();
    let mut handles = Vec::with_capacity(arrivals.len());
    for arrival in arrivals {
        let due = Duration::from_nanos(arrival.offset_nanos);
        if let Some(wait) = due.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        } // else: behind schedule — open loop, submit immediately
        let group = QueryGroup::sum(arrival.points).expect("workload query");
        handles.push(service.submit(QueryRequest::new(group, 8)));
    }
    let mut answered = 0usize;
    let mut total_na = 0u64;
    for handle in handles {
        let response = handle.wait().expect("query served");
        answered += response.neighbors.len().min(1);
        total_na += response.stats.data_tree.logical;
    }
    let wall = started.elapsed();

    // 4. Report.
    let stats = service.shutdown();
    let us = |d: Option<Duration>| d.map_or(0.0, |d| d.as_secs_f64() * 1e6);
    println!(
        "served {} queries in {:.3}s  ->  {:.0} queries/sec",
        stats.queries_served,
        wall.as_secs_f64(),
        stats.queries_served as f64 / wall.as_secs_f64()
    );
    println!(
        "latency: p50 {:.0}µs  p95 {:.0}µs  p99 {:.0}µs",
        us(stats.latency.p50()),
        us(stats.latency.p95()),
        us(stats.latency.p99())
    );
    println!(
        "cost: {:.1} node accesses / query ({} total)",
        total_na as f64 / stats.queries_served as f64,
        total_na
    );
    for w in &stats.per_worker {
        println!(
            "  worker {}: {} queries, {} NA, busy {:.1}ms",
            w.worker,
            w.queries,
            w.node_accesses,
            w.busy.as_secs_f64() * 1e3
        );
    }
    assert_eq!(answered, 200, "every query must return results");
}
