//! Quickstart: three users pick the restaurant minimising their total
//! travel distance — the motivating example from the paper's abstract.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gnn::prelude::*;

fn main() {
    // The static dataset P: candidate restaurants, indexed by an R*-tree.
    let restaurants = [
        ("Noodle Bar", Point::new(1.0, 1.0)),
        ("Trattoria", Point::new(4.0, 5.0)),
        ("Dumpling House", Point::new(9.0, 2.0)),
        ("Taqueria", Point::new(5.0, 4.0)),
        ("Bistro", Point::new(2.0, 8.0)),
    ];
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        restaurants
            .iter()
            .enumerate()
            .map(|(i, &(_, p))| LeafEntry::new(PointId(i as u64), p)),
    );

    // The query group Q: three users at their current locations.
    let users = QueryGroup::sum(vec![
        Point::new(2.0, 2.0),
        Point::new(3.0, 6.0),
        Point::new(5.0, 3.0),
    ])
    .expect("valid query group");

    // Ask for the 2 best meeting points with MBM (the paper's best
    // memory-resident algorithm).
    let cursor = TreeCursor::unbuffered(&tree);
    let result = Mbm::best_first().k_gnn(&cursor, &users, 2);

    println!("Best meeting restaurants for the group:");
    for (rank, n) in result.neighbors.iter().enumerate() {
        let (name, _) = restaurants[n.id.0 as usize];
        println!(
            "  {}. {:<15} at {}  (total travel distance {:.3})",
            rank + 1,
            name,
            n.point,
            n.dist
        );
    }
    println!(
        "\nCost: {} R-tree node accesses, {} distance computations.",
        result.stats.data_tree.logical, result.stats.dist_computations
    );
}
