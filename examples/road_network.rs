//! Network-distance GNN — the paper's future-work extension.
//!
//! Three friends in a city street grid pick the café minimising their total
//! *walking* distance (shortest paths along streets), not the straight-line
//! distance. The detour-heavy topology makes the Euclidean and network
//! answers differ, and shows why the IER algorithm must keep refining past
//! the Euclidean optimum.
//!
//! ```text
//! cargo run --example road_network
//! ```

use gnn::network::{NetworkIer, NetworkTa, RoadNetwork, VertexId};
use gnn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A 30x30 perturbed street grid (900 intersections).
    let city = RoadNetwork::grid(30, 30, 0.25, 7);
    println!(
        "City grid: {} intersections, {} street segments.",
        city.vertex_count(),
        city.edge_count()
    );

    // 60 cafés on random intersections.
    let mut rng = StdRng::seed_from_u64(11);
    let cafes: Vec<VertexId> = (0..60)
        .map(|_| VertexId(rng.gen_range(0..city.vertex_count() as u32)))
        .collect();

    // Three friends at street corners.
    let friends: Vec<VertexId> = [
        Point::new(5.0, 5.0),
        Point::new(12.0, 8.0),
        Point::new(7.0, 14.0),
    ]
    .iter()
    .map(|&p| city.snap(p).expect("non-empty city"))
    .collect();

    for agg in [Aggregate::Sum, Aggregate::Max] {
        let ta = NetworkTa.k_gnn(&city, &cafes, &friends, 1, agg);
        let ier = NetworkIer.k_gnn(&city, &cafes, &friends, 1, agg);
        let best = &ta.neighbors[0];
        assert!((best.dist - ier.neighbors[0].dist).abs() < 1e-9);
        println!(
            "\n[{agg}] meet at intersection v{} {} (walking aggregate {:.2})",
            best.vertex.0,
            city.position(best.vertex),
            best.dist
        );
        println!(
            "  TA : settled {} vertices, relaxed {} edges",
            ta.stats.settled_vertices, ta.stats.relaxed_edges
        );
        println!(
            "  IER: settled {} vertices, refined {} Euclidean candidates, {} R-tree accesses",
            ier.stats.settled_vertices, ier.stats.euclidean_candidates, ier.stats.rtree_accesses
        );
    }

    // Contrast with the Euclidean answer on the same configuration.
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        cafes
            .iter()
            .map(|&v| LeafEntry::new(PointId(u64::from(v.0)), city.position(v))),
    );
    let group = QueryGroup::sum(friends.iter().map(|&v| city.position(v)).collect()).unwrap();
    let cursor = TreeCursor::unbuffered(&tree);
    let euclid = Mbm::best_first().k_gnn(&cursor, &group, 1);
    let e_best = euclid.best().unwrap();
    let n_best = NetworkTa.k_gnn(&city, &cafes, &friends, 1, Aggregate::Sum);
    println!(
        "\nEuclidean optimum: v{} (straight-line sum {:.2}); network optimum: v{} (walking sum {:.2}).",
        e_best.id.0,
        e_best.dist,
        n_best.neighbors[0].vertex.0,
        n_best.neighbors[0].dist
    );
    println!(
        "The straight-line sum always lower-bounds the walking sum — that is IER's pruning bound."
    );
}
