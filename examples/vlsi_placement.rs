//! VLSI wire-length check — the circuit-design motivation from the paper's
//! introduction ("the operability and speed of very large circuits depends
//! on the relative distance between the various components").
//!
//! Given the pads of a net (the query group) and the free slots on the die
//! (the dataset), a GNN query returns the slot minimising total wire length
//! to all pads; the k-GNN list gives fallback slots for the placer.
//!
//! ```text
//! cargo run --example vlsi_placement
//! ```

use gnn::datasets::uniform_points;
use gnn::prelude::*;

fn main() {
    // The die: a 10mm x 10mm grid with 40 000 legal slots (perturbed grid).
    let die = Rect::from_corners(0.0, 0.0, 10_000.0, 10_000.0);
    let slots = uniform_points(40_000, die, 21);
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        slots
            .iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );

    // A 6-pad net that must connect to one new buffer.
    let net = vec![
        Point::new(2_100.0, 3_400.0),
        Point::new(2_800.0, 3_100.0),
        Point::new(2_500.0, 4_000.0),
        Point::new(3_200.0, 3_700.0),
        Point::new(2_900.0, 4_400.0),
        Point::new(2_300.0, 3_900.0),
    ];

    let group = QueryGroup::sum(net.clone()).expect("valid net");
    let cursor = TreeCursor::unbuffered(&tree);

    // Compare all three memory algorithms: identical answers, different I/O.
    println!(
        "{:<6} {:>8} {:>14} {:>16}",
        "algo", "k=5", "node accesses", "dist comps"
    );
    for (name, r) in [
        ("MQM", Mqm::new().k_gnn(&cursor, &group, 5)),
        ("SPM", Spm::best_first().k_gnn(&cursor, &group, 5)),
        ("MBM", Mbm::best_first().k_gnn(&cursor, &group, 5)),
    ] {
        println!(
            "{:<6} {:>8.1} {:>14} {:>16}",
            name,
            r.best().unwrap().dist,
            r.stats.data_tree.logical,
            r.stats.dist_computations
        );
    }

    let r = Mbm::best_first().k_gnn(&cursor, &group, 5);
    println!("\nBest 5 buffer slots by total wire length (um):");
    for n in &r.neighbors {
        println!(
            "  slot {:<8} at {:<24} wire length {:>10.1}",
            n.id,
            n.point.to_string(),
            n.dist
        );
    }

    // A MAX-aggregate query bounds the longest single wire instead (timing
    // closure rather than total routing cost).
    let timing_group = QueryGroup::with_aggregate(net, Aggregate::Max).expect("valid");
    let t = Mbm::best_first().k_gnn(&cursor, &timing_group, 1);
    let best = t.best().unwrap();
    println!(
        "\nTiming-driven (MAX) choice: slot {} at {} with worst wire {:.1} um.",
        best.id, best.point, best.dist
    );
}
