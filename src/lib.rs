//! # gnn — Group Nearest Neighbor queries over R\*-trees
//!
//! An umbrella crate re-exporting the whole GNN workspace: a faithful,
//! from-scratch Rust reproduction of
//!
//! > D. Papadias, Q. Shen, Y. Tao, K. Mouratidis.
//! > *Group Nearest Neighbor Queries.* ICDE 2004.
//!
//! Given a dataset `P` indexed by an R\*-tree and a group of query points
//! `Q = {q1..qn}`, a GNN query returns the `k` points of `P` minimising the
//! aggregate distance `dist(p, Q) = Σ_i |p qi|`.
//!
//! ## Quick start
//!
//! ```
//! use gnn::prelude::*;
//!
//! // Three users looking for a meeting point among candidate restaurants.
//! let restaurants = vec![
//!     Point::new(1.0, 1.0),
//!     Point::new(4.0, 5.0),
//!     Point::new(9.0, 2.0),
//! ];
//! let tree = RTree::bulk_load(
//!     RTreeParams::default(),
//!     restaurants
//!         .iter()
//!         .enumerate()
//!         .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
//! );
//! let users = QueryGroup::sum(vec![
//!     Point::new(2.0, 2.0),
//!     Point::new(3.0, 6.0),
//!     Point::new(5.0, 3.0),
//! ])
//! .unwrap();
//!
//! let cursor = TreeCursor::unbuffered(&tree);
//! let found = Mbm::best_first().k_gnn(&cursor, &users, 1);
//! assert_eq!(found.neighbors[0].id, PointId(1)); // the restaurant at (4, 5)
//! ```
//!
//! ## Workspace layout
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`geom`] | `gnn-geom` | points, rectangles, `mindist`, Hilbert curve |
//! | [`rtree`] | `gnn-rtree` | R\*-tree, buffer pool, NN & closest-pair search |
//! | [`qfile`] | `gnn-qfile` | paged disk-resident query files |
//! | [`datasets`] | `gnn-datasets` | PP/TS dataset substitutes, workloads |
//! | [`core`] | `gnn-core` | MQM, SPM, MBM, GCP, F-MQM, F-MBM |
//! | [`telemetry`] | `gnn-telemetry` | latency histograms, stage decomposition, flight recorder |
//! | [`service`] | `gnn-service` | sharded multi-threaded query serving + metrics export |
//! | [`network`] | `gnn-network` | the future-work extension: GNN under network distance, with packed serving snapshots |

pub use gnn_core as core;
pub use gnn_datasets as datasets;
pub use gnn_geom as geom;
pub use gnn_network as network;
pub use gnn_qfile as qfile;
pub use gnn_rtree as rtree;
pub use gnn_service as service;
pub use gnn_telemetry as telemetry;

/// One-stop imports for typical GNN usage.
pub mod prelude {
    pub use gnn_core::{
        execute_batch_in, Aggregate, Algo, BatchAccounting, Choice, FileGnnAlgorithm, Fmbm, Fmqm,
        Gcp, GnnResult, Mbm, MbmStream, MemoryGnnAlgorithm, Mqm, Neighbor, NetworkBackend,
        NetworkQuery, Planner, QueryGroup, QueryRequest, QueryResponse, QueryScratch, QueryStats,
        QueryTrace, ShardRouting, Spm, Target, Traversal,
    };
    pub use gnn_geom::{Point, PointId, Rect};
    pub use gnn_network::{
        NetworkIer, NetworkScratch, NetworkSnapshot, NetworkTa, PackedGraph, RoadNetwork, VertexId,
    };
    pub use gnn_qfile::{FileCursor, GroupedQueryFile, PointFile};
    pub use gnn_rtree::{
        LeafEntry, PackedRTree, RTree, RTreeParams, ShardedSnapshot, ShardedTree, TreeCursor,
    };
    pub use gnn_service::{
        DriverError, FaultLedger, FaultPlan, PublishRecord, QueryError, RefreshDriver,
        RefreshPolicy, ResponseHandle, Service, ServiceConfig, ServiceStats, StatsLogger,
        Submission, SubmitError, Update, WaitError,
    };
    pub use gnn_telemetry::{
        FlightEvent, FlightEventKind, FlightLog, LatencySnapshot, StageSnapshot,
    };
}
