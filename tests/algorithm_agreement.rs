//! Cross-algorithm agreement: every GNN algorithm in the workspace is exact,
//! so on identical inputs they must all return the same distance multiset —
//! including the naive oracle.

use gnn::core::baseline::linear_scan_entries;
use gnn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64, lo: f64, hi: f64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                lo + rng.gen::<f64>() * (hi - lo),
                lo + rng.gen::<f64>() * (hi - lo),
            )
        })
        .collect()
}

fn build_tree(points: &[Point], capacity: usize) -> RTree {
    RTree::bulk_load(
        RTreeParams::with_capacity(capacity),
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    )
}

fn assert_distances_match(name: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}: wrong result count");
    for (g, w) in got.iter().zip(want) {
        assert!(
            (g - w).abs() < 1e-6 * (1.0 + w.abs()),
            "{name}: {g} vs oracle {w}"
        );
    }
}

#[test]
fn memory_algorithms_agree_across_many_scenarios() {
    let data = random_points(1500, 1, 0.0, 1000.0);
    let tree = build_tree(&data, 16);
    let scenarios: Vec<(usize, f64, f64, usize)> = vec![
        // (n, span_lo, span_hi, k)
        (1, 0.0, 1000.0, 1),
        (4, 400.0, 600.0, 8),
        (64, 0.0, 250.0, 3),
        (256, 100.0, 900.0, 16),
    ];
    for (si, &(n, lo, hi, k)) in scenarios.iter().enumerate() {
        let q = random_points(n, 100 + si as u64, lo, hi);
        let group = QueryGroup::sum(q).unwrap();
        let want = linear_scan_entries(tree.iter(), &group, k);
        let algos: Vec<(&str, Box<dyn MemoryGnnAlgorithm>)> = vec![
            ("MQM", Box::new(Mqm::new())),
            ("SPM-bf", Box::new(Spm::best_first())),
            ("SPM-df", Box::new(Spm::depth_first())),
            ("MBM-bf", Box::new(Mbm::best_first())),
            ("MBM-df", Box::new(Mbm::depth_first())),
        ];
        for (name, algo) in algos {
            let cursor = TreeCursor::unbuffered(&tree);
            let got = algo.k_gnn(&cursor, &group, k);
            assert_distances_match(
                &format!("{name} scenario {si}"),
                &got.distances(),
                &want.distances(),
            );
        }
    }
}

#[test]
fn disk_algorithms_agree_with_memory_algorithms() {
    let data = random_points(800, 2, 0.0, 100.0);
    let tree = build_tree(&data, 16);
    for (si, (qn, qlo, qhi)) in [(60usize, 20.0, 80.0), (150, 0.0, 30.0), (90, 150.0, 200.0)]
        .into_iter()
        .enumerate()
    {
        let qpts = random_points(qn, 300 + si as u64, qlo, qhi);
        let k = 5;
        let group = QueryGroup::sum(qpts.clone()).unwrap();
        let want = linear_scan_entries(tree.iter(), &group, k);

        // F-MQM and F-MBM over a grouped file.
        let qf = GroupedQueryFile::build_with(qpts.clone(), 16, 48);
        assert!(qf.group_count() >= 2, "want multiple groups");
        for (name, algo) in [
            ("F-MQM", Box::new(Fmqm::new()) as Box<dyn FileGnnAlgorithm>),
            ("F-MBM bf", Box::new(Fmbm::best_first())),
            ("F-MBM df", Box::new(Fmbm::depth_first())),
        ] {
            let cursor = TreeCursor::unbuffered(&tree);
            let fc = FileCursor::new(qf.file());
            let got = algo.k_gnn(&cursor, &qf, &fc, k, Aggregate::Sum);
            assert_distances_match(
                &format!("{name} scenario {si}"),
                &got.distances(),
                &want.distances(),
            );
        }

        // GCP over an R-tree on Q.
        let qtree = build_tree(&qpts, 8);
        let dc = TreeCursor::unbuffered(&tree);
        let qc = TreeCursor::unbuffered(&qtree);
        let got = Gcp::new().k_gnn(&dc, &qc, k);
        assert!(!got.stats.aborted, "GCP aborted on a small scenario");
        assert_distances_match(
            &format!("GCP scenario {si}"),
            &got.distances(),
            &want.distances(),
        );
    }
}

#[test]
fn aggregates_agree_between_memory_and_file_algorithms() {
    let data = random_points(600, 3, 0.0, 50.0);
    let tree = build_tree(&data, 8);
    let qpts = random_points(70, 4, 10.0, 40.0);
    for agg in [Aggregate::Sum, Aggregate::Max, Aggregate::Min] {
        let group = QueryGroup::with_aggregate(qpts.clone(), agg).unwrap();
        let want = linear_scan_entries(tree.iter(), &group, 4);

        let cursor = TreeCursor::unbuffered(&tree);
        let mqm = Mqm::new().k_gnn(&cursor, &group, 4);
        assert_distances_match(&format!("MQM {agg}"), &mqm.distances(), &want.distances());
        let mbm = Mbm::best_first().k_gnn(&cursor, &group, 4);
        assert_distances_match(&format!("MBM {agg}"), &mbm.distances(), &want.distances());

        let qf = GroupedQueryFile::build_with(qpts.clone(), 16, 32);
        let fc = FileCursor::new(qf.file());
        let fmqm = Fmqm::new().k_gnn(&cursor, &qf, &fc, 4, agg);
        assert_distances_match(
            &format!("F-MQM {agg}"),
            &fmqm.distances(),
            &want.distances(),
        );
        let fmbm = Fmbm::best_first().k_gnn(&cursor, &qf, &fc, 4, agg);
        assert_distances_match(
            &format!("F-MBM {agg}"),
            &fmbm.distances(),
            &want.distances(),
        );
    }
}

#[test]
fn agreement_on_clustered_data_with_ties_and_duplicates() {
    // A dataset full of duplicate coordinates: distance ties everywhere.
    let mut data = Vec::new();
    for i in 0..50u64 {
        let p = Point::new((i % 5) as f64, (i % 7) as f64);
        data.push(p);
        data.push(p); // exact duplicate with a different id
    }
    let tree = build_tree(&data, 4);
    let group = QueryGroup::sum(vec![Point::new(2.0, 3.0), Point::new(3.0, 2.0)]).unwrap();
    let want = linear_scan_entries(tree.iter(), &group, 10);
    for (name, algo) in [
        ("MQM", Box::new(Mqm::new()) as Box<dyn MemoryGnnAlgorithm>),
        ("SPM", Box::new(Spm::best_first())),
        ("MBM", Box::new(Mbm::best_first())),
    ] {
        let cursor = TreeCursor::unbuffered(&tree);
        let got = algo.k_gnn(&cursor, &group, 10);
        assert_distances_match(name, &got.distances(), &want.distances());
    }
}

#[test]
fn buffered_and_unbuffered_cursors_give_identical_results() {
    let data = random_points(1000, 5, 0.0, 10.0);
    let tree = build_tree(&data, 16);
    let group = QueryGroup::sum(random_points(16, 6, 2.0, 8.0)).unwrap();
    for (name, algo) in [
        ("MQM", Box::new(Mqm::new()) as Box<dyn MemoryGnnAlgorithm>),
        ("SPM", Box::new(Spm::best_first())),
        ("MBM", Box::new(Mbm::best_first())),
    ] {
        let unbuffered = TreeCursor::unbuffered(&tree);
        let buffered = TreeCursor::with_buffer(&tree, 64);
        let a = algo.k_gnn(&unbuffered, &group, 6);
        let b = algo.k_gnn(&buffered, &group, 6);
        assert_eq!(a.distances(), b.distances(), "{name}");
        // Logical accesses identical; buffer can only reduce I/O.
        assert_eq!(
            a.stats.data_tree.logical, b.stats.data_tree.logical,
            "{name}: traversal changed under buffering"
        );
        assert!(b.stats.data_tree.io <= a.stats.data_tree.io, "{name}");
    }
}

#[test]
fn incremental_trees_and_bulk_loaded_trees_agree() {
    let data = random_points(700, 7, 0.0, 100.0);
    let mut incremental = RTree::new(RTreeParams::with_capacity(10));
    for (i, &p) in data.iter().enumerate() {
        incremental.insert(LeafEntry::new(PointId(i as u64), p));
    }
    let bulk = build_tree(&data, 10);
    let group = QueryGroup::sum(random_points(8, 8, 20.0, 70.0)).unwrap();
    let ci = TreeCursor::unbuffered(&incremental);
    let cb = TreeCursor::unbuffered(&bulk);
    let a = Mbm::best_first().k_gnn(&ci, &group, 5);
    let b = Mbm::best_first().k_gnn(&cb, &group, 5);
    assert_eq!(a.distances(), b.distances());
}
