//! Batch-executor equivalence: a shared-traversal batch
//! ([`execute_batch_in`], [`Submission::batch`]) must be bit-identical to
//! the per-query reference ([`Planner::run_many_collect`]) — same neighbor
//! ids, same distance bits, and the same **per-query node accesses** — at
//! every batch split and on every worker count. Sharing is physical only
//! (the distinct-page overlay on the shared cursor); the logical traversal
//! of each query is untouched, which is what makes the NA metric
//! schedule-independent.
//!
//! Sharded comparisons against the *unsharded* reference inherit the
//! k-th-boundary-tie caveat of `sharded_equivalence.rs`: exact aggregate
//! distances are a pure function of (point, group), so distance bits are
//! always compared, ids only when the reference's `k+1` probe shows no tie
//! at the k-th slot. Batch-vs-per-query on the SAME target needs no guard
//! — the executor runs the identical code path per query.

use gnn::core::QueryScratch;
use gnn::datasets::{hotspot_query_workload, HotspotSpec, QuerySpec};
use gnn::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn tree_of(pts: &[Point]) -> RTree {
    RTree::bulk_load(
        RTreeParams::with_capacity(8),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    )
}

fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0))
        .collect()
}

/// A skewed (hotspot) workload — overlapping traffic is the batch
/// executor's target regime, and overlapping heaps are where traversal
/// bugs would show.
fn hotspot_groups(workspace: Rect, count: usize, seed: u64) -> Vec<QueryGroup> {
    let spec = HotspotSpec {
        query: QuerySpec {
            n: 6,
            area_fraction: 0.02,
        },
        hotspots: 4,
        sigma: 0.03,
        background: 0.2,
    };
    hotspot_query_workload(workspace, spec, count, seed)
        .into_iter()
        .map(|pts| QueryGroup::sum(pts).expect("workload query"))
        .collect()
}

/// Per-query fingerprint: ids + distance bits + logical NA.
type Fingerprint = (Vec<(u64, u64)>, u64, Choice);

fn fingerprint(neighbors: &[Neighbor], na: u64, choice: Choice) -> Fingerprint {
    (
        neighbors
            .iter()
            .map(|n| (n.id.0, n.dist.to_bits()))
            .collect(),
        na,
        choice,
    )
}

/// Runs `requests` through the batch executor in chunks of `batch_size`
/// and returns the per-query fingerprints in submission order.
fn run_batched(
    planner: &Planner,
    target: &Target<'_, '_>,
    requests: &[QueryRequest],
    batch_size: usize,
) -> Vec<Fingerprint> {
    let mut scratch = QueryScratch::new();
    let mut out: Vec<Option<Fingerprint>> = vec![None; requests.len()];
    for (chunk_idx, chunk) in requests.chunks(batch_size).enumerate() {
        let base = chunk_idx * batch_size;
        let accounting = execute_batch_in(
            planner,
            target,
            chunk,
            &mut scratch,
            |i, choice, ns, stats, _| {
                out[base + i] = Some(fingerprint(ns, stats.data_tree.logical, choice));
            },
        );
        assert_eq!(accounting.queries, chunk.len());
        assert!(accounting.unique_pages <= accounting.sequential_pages);
    }
    out.into_iter()
        .map(|f| f.expect("every query sank"))
        .collect()
}

#[test]
fn unsharded_batches_are_bit_identical_to_run_many_collect() {
    let pts = uniform_points(6_000, 21);
    let tree = tree_of(&pts);
    let packed = tree.freeze();
    let groups = hotspot_groups(tree.root_mbr(), 64, 0xBA7C_0001);
    let k = 4;

    let planner = Planner::new();
    let cursor = packed.cursor();
    let mut scratch = QueryScratch::new();
    let reference: Vec<Fingerprint> = planner
        .run_many_collect(&cursor, &groups, k, &mut scratch)
        .into_iter()
        .map(|(choice, r)| fingerprint(&r.neighbors, r.stats.data_tree.logical, choice))
        .collect();

    let requests: Vec<QueryRequest> = groups
        .iter()
        .map(|g| QueryRequest::new(g.clone(), k))
        .collect();
    for batch_size in [1usize, 7, 64] {
        let cursor = packed.cursor();
        let target = Target::Single(&cursor);
        let got = run_batched(&planner, &target, &requests, batch_size);
        assert_eq!(got, reference, "batch size {batch_size}");
    }
}

#[test]
fn sharded_batches_match_per_query_execution_and_the_unsharded_reference() {
    let pts = uniform_points(6_000, 22);
    let tree = tree_of(&pts);
    let packed = tree.freeze();
    let groups = hotspot_groups(tree.root_mbr(), 64, 0xBA7C_0002);
    let k = 4;
    let planner = Planner::new();

    // Unsharded reference + per-query boundary-tie probes.
    let cursor = packed.cursor();
    let mut scratch = QueryScratch::new();
    let reference: Vec<Fingerprint> = planner
        .run_many_collect(&cursor, &groups, k, &mut scratch)
        .into_iter()
        .map(|(choice, r)| fingerprint(&r.neighbors, r.stats.data_tree.logical, choice))
        .collect();
    let boundary_tie: Vec<bool> = groups
        .iter()
        .map(|group| {
            let probe = Mbm::best_first().k_gnn(&packed.cursor(), group, k + 1);
            probe.neighbors.len() > k
                && probe.neighbors[k - 1].dist.to_bits() == probe.neighbors[k].dist.to_bits()
        })
        .collect();

    let requests: Vec<QueryRequest> = groups
        .iter()
        .map(|g| QueryRequest::new(g.clone(), k))
        .collect();
    for shards in [1usize, 3] {
        let sharded = packed.partition(shards);
        let cursors: Vec<TreeCursor<'_>> = sharded.shards().iter().map(|s| s.cursor()).collect();
        let target = Target::Sharded {
            snapshot: &sharded,
            cursors: &cursors,
        };

        // Per-query execution on the SAME sharded target: the executor's
        // schedule-independence anchor — full fingerprint including NA.
        let mut scratch = QueryScratch::new();
        let per_query: Vec<Fingerprint> = requests
            .iter()
            .map(|r| {
                let (choice, ns, stats, _) = r.execute_on(&planner, &target, &mut scratch);
                fingerprint(ns, stats.data_tree.logical, choice)
            })
            .collect();
        for batch_size in [1usize, 7, 64] {
            let got = run_batched(&planner, &target, &requests, batch_size);
            assert_eq!(
                got, per_query,
                "{shards} shards, batch size {batch_size}: batch vs per-query"
            );
        }

        // Against the unsharded reference: distance bits always, ids only
        // outside boundary ties, NA only where the tree is the same one.
        for (i, (got, want)) in per_query.iter().zip(&reference).enumerate() {
            let got_bits: Vec<u64> = got.0.iter().map(|&(_, bits)| bits).collect();
            let want_bits: Vec<u64> = want.0.iter().map(|&(_, bits)| bits).collect();
            assert_eq!(got_bits, want_bits, "{shards} shards, query {i}: distances");
            if !boundary_tie[i] {
                assert_eq!(got.0, want.0, "{shards} shards, query {i}: ids");
            }
            if shards == 1 {
                assert_eq!(got.1, want.1, "single shard, query {i}: NA");
            }
        }
    }
}

#[test]
fn service_batches_are_bit_identical_on_1_2_and_8_workers() {
    let pts = uniform_points(6_000, 23);
    let tree = tree_of(&pts);
    let packed = Arc::new(tree.freeze());
    let groups = hotspot_groups(tree.root_mbr(), 64, 0xBA7C_0003);
    let k = 4;

    let planner = Planner::new();
    let cursor = packed.cursor();
    let mut scratch = QueryScratch::new();
    let reference: Vec<Fingerprint> = planner
        .run_many_collect(&cursor, &groups, k, &mut scratch)
        .into_iter()
        .map(|(choice, r)| fingerprint(&r.neighbors, r.stats.data_tree.logical, choice))
        .collect();

    for workers in [1usize, 2, 8] {
        for batch_size in [1usize, 7, 64] {
            let service = Service::start(Arc::clone(&packed), ServiceConfig::with_workers(workers));
            let mut got: Vec<Fingerprint> = Vec::with_capacity(groups.len());
            for chunk in groups.chunks(batch_size) {
                let responses = service
                    .submit(Submission::batch(
                        chunk.iter().map(|g| QueryRequest::new(g.clone(), k)),
                    ))
                    .expect("batch submitted")
                    .wait_all()
                    .expect("batch served");
                got.extend(
                    responses
                        .iter()
                        .map(|r| fingerprint(&r.neighbors, r.stats.data_tree.logical, r.choice)),
                );
            }
            assert_eq!(got, reference, "{workers} workers, batch size {batch_size}");
            let stats = service.shutdown();
            assert_eq!(stats.batch_queries, groups.len() as u64);
            assert_eq!(stats.batches, groups.len().div_ceil(batch_size) as u64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn arbitrary_workloads_batch_identically(
        data_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        k in 1usize..5,
    ) {
        // Property form of the deterministic suites above: random data and
        // workload seeds, unsharded full equality plus a 3-shard
        // distance-bits check.
        let pts = uniform_points(1_500, data_seed);
        let tree = tree_of(&pts);
        let packed = tree.freeze();
        let groups = hotspot_groups(tree.root_mbr(), 12, workload_seed);
        let planner = Planner::new();

        let cursor = packed.cursor();
        let mut scratch = QueryScratch::new();
        let reference: Vec<Fingerprint> = planner
            .run_many_collect(&cursor, &groups, k, &mut scratch)
            .into_iter()
            .map(|(choice, r)| fingerprint(&r.neighbors, r.stats.data_tree.logical, choice))
            .collect();
        let requests: Vec<QueryRequest> = groups
            .iter()
            .map(|g| QueryRequest::new(g.clone(), k))
            .collect();

        for batch_size in [1usize, 5, 12] {
            let cursor = packed.cursor();
            let target = Target::Single(&cursor);
            let got = run_batched(&planner, &target, &requests, batch_size);
            prop_assert_eq!(&got, &reference, "batch size {}", batch_size);
        }

        let sharded = packed.partition(3);
        let cursors: Vec<TreeCursor<'_>> =
            sharded.shards().iter().map(|s| s.cursor()).collect();
        let target = Target::Sharded { snapshot: &sharded, cursors: &cursors };
        let got = run_batched(&planner, &target, &requests, 5);
        for (i, (g, want)) in got.iter().zip(&reference).enumerate() {
            let got_bits: Vec<u64> = g.0.iter().map(|&(_, bits)| bits).collect();
            let want_bits: Vec<u64> = want.0.iter().map(|&(_, bits)| bits).collect();
            prop_assert_eq!(got_bits, want_bits, "query {} sharded distances", i);
        }
    }
}
