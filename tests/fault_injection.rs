//! Fault-tolerance contracts under deterministic fault injection: a worker
//! panic is a **typed response** ([`QueryError::WorkerPanicked`]) for
//! exactly the query that was in flight, never a hung wait or a lost
//! reply; the supervisor rebuilds the worker's serving state so pool
//! capacity is invariant; expired requests are shed at dequeue with
//! [`QueryError::DeadlineExceeded`]; and every query a fault did *not*
//! touch stays bit-identical to the sequential reference — on any worker
//! count, sharded or not, and across a mid-batch panic-resume.

use gnn::core::QueryScratch;
use gnn::datasets::{query_workload, QuerySpec};
use gnn::prelude::*;
use gnn::service::QueryError;
use std::sync::Arc;
use std::time::Duration;

fn fingerprint(neighbors: &[Neighbor]) -> Vec<(u64, u64)> {
    neighbors
        .iter()
        .map(|n| (n.id.0, n.dist.to_bits()))
        .collect()
}

fn base_points(n: usize, seed: u64) -> Vec<Point> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0))
        .collect()
}

fn tree_of(pts: &[Point]) -> RTree {
    RTree::bulk_load(
        RTreeParams::default(),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    )
}

fn workload(workspace: Rect, count: usize, seed: u64) -> Vec<QueryRequest> {
    let spec = QuerySpec {
        n: 8,
        area_fraction: 0.06,
    };
    query_workload(workspace, spec, count, seed)
        .into_iter()
        .map(|pts| QueryRequest::new(QueryGroup::sum(pts).unwrap(), 4))
        .collect()
}

/// Sequential per-request reference on the service's own sharded target —
/// the exact code path a worker runs, minus threads and faults.
fn references(snapshot: &ShardedSnapshot, requests: &[QueryRequest]) -> Vec<Vec<(u64, u64)>> {
    let planner = Planner::new();
    let cursors: Vec<TreeCursor<'_>> = snapshot.shards().iter().map(|s| s.cursor()).collect();
    let mut scratch = QueryScratch::new();
    requests
        .iter()
        .map(|r| {
            let (_, neighbors, _, _) =
                r.execute_sharded_in(&planner, snapshot, &cursors, &mut scratch);
            fingerprint(neighbors)
        })
        .collect()
}

fn sharded_snapshot(tree: &RTree, shards: usize) -> Arc<ShardedSnapshot> {
    if shards == 1 {
        Arc::new(ShardedSnapshot::single(Arc::new(tree.freeze())))
    } else {
        Arc::new(tree.freeze().partition(shards))
    }
}

/// The tentpole matrix: every worker panics on its 2nd executed query, on
/// 1/2/8 workers x {unsharded, 4 shards}. Every handle resolves to exactly
/// one outcome (no hangs, no lost replies), every normal response is
/// bit-identical to the sequential reference, the ledger agrees with the
/// per-handle tally, and a second full round proves respawned workers kept
/// the pool at full capacity.
#[test]
fn worker_panics_are_typed_and_respawn_restores_capacity() {
    gnn::service::silence_injected_panics();
    let pts = base_points(8_000, 21);
    let tree = tree_of(&pts);
    let count = 48usize;

    for shards in [1usize, 4] {
        let snapshot = sharded_snapshot(&tree, shards);
        let requests = workload(tree.root_mbr(), count, 900 + shards as u64);
        let reference = references(&snapshot, &requests);

        for workers in [1usize, 2, 8] {
            // One panic point per worker: ids are global across shard
            // pools, so this covers every pool of the sharded services.
            let spawned = workers.max(shards); // start_sharded: >= 1 per pool
            let mut plan = FaultPlan::none();
            for w in 0..spawned {
                plan = plan.panic_on(w, 2);
            }
            let service = Service::start_sharded(
                Arc::clone(&snapshot),
                ServiceConfig {
                    workers,
                    fault_plan: plan,
                    ..ServiceConfig::default()
                },
            );

            let mut ok = 0u64;
            let mut panicked = 0u64;
            for round in 0..2 {
                let handles: Vec<_> = requests
                    .iter()
                    .map(|r| service.submit(r.clone()).expect("submit"))
                    .collect();
                for (i, h) in handles.into_iter().enumerate() {
                    match h.wait() {
                        Ok(r) => {
                            ok += 1;
                            assert_eq!(
                                fingerprint(&r.neighbors),
                                reference[i],
                                "query {i} diverged (round {round}, {workers} workers, \
                                 {shards} shards)"
                            );
                        }
                        Err(SubmitError::Query(QueryError::WorkerPanicked)) => panicked += 1,
                        Err(e) => panic!("unexpected outcome for query {i}: {e:?}"),
                    }
                }
            }

            let stats = service.shutdown();
            // Exactly one outcome per submitted query, across both rounds.
            assert_eq!(
                ok + panicked,
                2 * count as u64,
                "lost or duplicated replies"
            );
            // 96 queries over at most 8 workers: some worker must reach
            // its 2nd execution, and each point fires at most once.
            assert!(panicked >= 1, "no injected panic fired");
            assert!(panicked <= spawned as u64, "a panic point fired twice");
            assert_eq!(stats.faults.panics, panicked, "ledger vs handle tally");
            assert_eq!(stats.faults.respawns, panicked, "capacity not restored");
            assert_eq!(stats.queries_served, ok, "served count excludes panics");
        }
    }
}

/// Satellite (d): a shared-traversal batch whose K-th executed query
/// panics must answer every other query exactly once — the aborted pass's
/// survivors are re-run as a fresh pass, bit-identical to the reference.
#[test]
fn mid_batch_panic_answers_every_other_query_exactly_once() {
    gnn::service::silence_injected_panics();
    let pts = base_points(6_000, 33);
    let tree = tree_of(&pts);
    let snapshot = sharded_snapshot(&tree, 1);
    let requests = workload(tree.root_mbr(), 8, 1234);
    let reference = references(&snapshot, &requests);

    let service = Service::start_sharded(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 1,
            fault_plan: FaultPlan::none().panic_on(0, 3),
            ..ServiceConfig::default()
        },
    );
    let handle = service
        .submit(Submission::batch(requests.clone()))
        .expect("batch submitted");
    let outcomes = handle.wait_each();
    assert_eq!(outcomes.len(), 8);
    let mut panicked = 0u64;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(r) => assert_eq!(
                fingerprint(&r.neighbors),
                reference[i],
                "batch member {i} diverged after the panic-resume"
            ),
            Err(SubmitError::Query(QueryError::WorkerPanicked)) => panicked += 1,
            Err(e) => panic!("unexpected outcome for batch member {i}: {e:?}"),
        }
    }
    assert_eq!(panicked, 1, "exactly the in-flight query fails");

    let stats = service.shutdown();
    assert_eq!(stats.faults.panics, 1);
    assert_eq!(stats.faults.respawns, 1);
    assert_eq!(stats.queries_served, 7);
}

/// Satellite (c): `wait_all` on a batch with one failed member returns the
/// partial responses alongside the typed error instead of discarding them.
#[test]
fn wait_all_hands_back_partial_responses_on_failure() {
    gnn::service::silence_injected_panics();
    let pts = base_points(5_000, 55);
    let tree = tree_of(&pts);
    let snapshot = sharded_snapshot(&tree, 1);
    let requests = workload(tree.root_mbr(), 8, 77);
    let reference = references(&snapshot, &requests);

    let service = Service::start_sharded(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 1,
            fault_plan: FaultPlan::none().panic_on(0, 5),
            ..ServiceConfig::default()
        },
    );
    let handle = service
        .submit(Submission::batch(requests))
        .expect("batch submitted");
    let err = handle.wait_all().expect_err("one member panicked");
    assert_eq!(
        err.error,
        SubmitError::Query(QueryError::WorkerPanicked),
        "typed per-query error surfaces as the batch error"
    );
    assert_eq!(err.received.len(), 8);
    assert_eq!(err.received.iter().filter(|r| r.is_some()).count(), 7);
    for (i, r) in err.received.iter().enumerate() {
        if let Some(r) = r {
            assert_eq!(fingerprint(&r.neighbors), reference[i]);
        }
    }
    service.shutdown();
}

/// Deadlines shed expired requests at dequeue with a typed error: behind a
/// slow worker (injected latency far past the deadline), everything that
/// waited in the queue is shed, and every request still gets exactly one
/// outcome.
#[test]
fn expired_requests_are_shed_with_typed_error() {
    let pts = base_points(4_000, 88);
    let tree = tree_of(&pts);
    let snapshot = sharded_snapshot(&tree, 1);
    let requests = workload(tree.root_mbr(), 4, 5);

    let service = Service::start_sharded(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 1,
            fault_plan: FaultPlan::none().with_query_latency(Duration::from_millis(20)),
            ..ServiceConfig::default()
        },
    );
    let handles: Vec<_> = requests
        .iter()
        .map(|r| {
            service
                .submit(r.clone().with_deadline(Duration::from_millis(1)))
                .expect("submit")
        })
        .collect();
    let mut served = 0u64;
    let mut shed = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => served += 1,
            Err(SubmitError::Query(QueryError::DeadlineExceeded)) => shed += 1,
            Err(e) => panic!("unexpected outcome: {e:?}"),
        }
    }
    assert_eq!(served + shed, 4, "every request resolves exactly once");
    // The 20ms execution ahead of them expires everything that queued;
    // only a request dequeued before its 1ms budget elapsed can be served.
    assert!(shed >= 3, "queue-expired requests must be shed, got {shed}");

    let stats = service.shutdown();
    assert_eq!(stats.faults.shed, shed);
    // Anything served was dequeued in time but finished ~20ms late: the
    // SLO-miss counter sees it, the error path does not.
    assert_eq!(stats.faults.deadline_missed, served);
    assert_eq!(stats.queries_served, served);
}

/// `wait_timeout` returns `None` while the response is still pending and
/// delivers the same response on a later call — a timeout never consumes
/// or corrupts the reply.
#[test]
fn wait_timeout_times_out_then_delivers() {
    let pts = base_points(4_000, 99);
    let tree = tree_of(&pts);
    let snapshot = sharded_snapshot(&tree, 1);
    let requests = workload(tree.root_mbr(), 1, 6);
    let reference = references(&snapshot, &requests);

    let service = Service::start_sharded(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 1,
            fault_plan: FaultPlan::none().with_query_latency(Duration::from_millis(60)),
            ..ServiceConfig::default()
        },
    );
    let mut handle = service.submit(requests[0].clone()).expect("submit");
    assert!(
        handle.wait_timeout(Duration::from_millis(5)).is_none(),
        "a 5ms wait cannot outlast a 60ms execution"
    );
    let r = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("response arrives")
        .expect("query served");
    assert_eq!(fingerprint(&r.neighbors), reference[0]);
    service.shutdown();
}

/// Satellite (a): an injected refreeze failure stops the driver, and
/// `join` reports it as a typed [`DriverError`] instead of panicking.
#[test]
fn refresh_driver_join_reports_refreeze_failure() {
    let entries: Vec<LeafEntry> = base_points(3_000, 44)
        .into_iter()
        .enumerate()
        .map(|(i, p)| LeafEntry::new(PointId(i as u64), p))
        .collect();
    let sharded_tree = ShardedTree::build(RTreeParams::with_capacity(16), entries, 2);
    let initial = Arc::new(sharded_tree.freeze_all());
    let service = Arc::new(Service::start_sharded(
        Arc::clone(&initial),
        ServiceConfig {
            workers: 2,
            fault_plan: FaultPlan::none().fail_refreeze(1),
            ..ServiceConfig::default()
        },
    ));
    let driver = RefreshDriver::start(
        sharded_tree,
        Arc::clone(&service),
        gnn::service::RefreshPolicy::default(),
    );
    // One accepted update forces a refreeze (at the latest, the join-time
    // flush) — which the plan fails on cycle 1.
    assert!(driver.apply(Update::Insert(LeafEntry::new(
        PointId(999_999),
        Point::new(1.0, 2.0),
    ))));
    let err = driver.join().expect_err("refreeze failure must surface");
    assert_eq!(err, gnn::service::DriverError::RefreezeFailed { cycle: 1 });
    // The serving side is unaffected: the failed refreeze published
    // nothing and the service still answers.
    let requests = workload(Rect::from_corners(0.0, 0.0, 1000.0, 1000.0), 1, 7);
    let r = service
        .submit(requests[0].clone())
        .expect("submit after driver failure")
        .wait()
        .expect("query served");
    assert!(!r.neighbors.is_empty());
    Arc::try_unwrap(service)
        .expect("driver released its service handle")
        .shutdown();
}
