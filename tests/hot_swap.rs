//! Snapshot hot-swap determinism: a service whose snapshot is republished
//! mid-run (the refreeze → publish lifecycle) must stay pinnable **per
//! generation** — every response is tagged with the generation that served
//! it, and all responses of one generation are bit-identical to the
//! sequential reference on that generation's snapshot. Workers pick swaps
//! up between queries, so a batch submitted after `publish` returns is
//! served entirely on the new generation.

use gnn::datasets::{mixed_traffic, MixedOp, MixedSpec, QuerySpec};
use gnn::prelude::*;
use std::sync::Arc;

fn fingerprint(neighbors: &[Neighbor]) -> Vec<(u64, u64)> {
    neighbors
        .iter()
        .map(|n| (n.id.0, n.dist.to_bits()))
        .collect()
}

/// Sequential reference of `groups` on one snapshot.
fn reference(snapshot: &PackedRTree, groups: &[QueryGroup], k: usize) -> Vec<Vec<(u64, u64)>> {
    let planner = Planner::new();
    let cursor = snapshot.cursor();
    let mut scratch = QueryScratch::new();
    let mut out = Vec::with_capacity(groups.len());
    planner.run_many(&cursor, groups, k, &mut scratch, |_, _, neighbors, _| {
        out.push(fingerprint(neighbors));
    });
    out
}

#[test]
fn every_generation_matches_its_sequential_reference() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // Base dataset + a fixed-seed mixed schedule: the updates between
    // generations and the queries of each phase all come from the same
    // deterministic recipe the mixed-traffic experiment uses.
    let mut rng = StdRng::seed_from_u64(4242);
    let base: Vec<Point> = (0..8_000)
        .map(|_| Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0))
        .collect();
    let mut tree = RTree::bulk_load(
        RTreeParams::with_capacity(16),
        base.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    let workspace = tree.root_mbr();
    let spec = MixedSpec {
        query: QuerySpec {
            n: 8,
            area_fraction: 0.08,
        },
        queries: 48,
        query_rate_qps: 10_000.0,
        updates: 600,
        update_rate_ups: 50_000.0,
        insert_fraction: 0.5,
    };
    let events = mixed_traffic(workspace, spec, &base, 99);
    let groups: Vec<QueryGroup> = events
        .iter()
        .filter_map(|e| match &e.op {
            MixedOp::Query { points } => Some(QueryGroup::sum(points.clone()).unwrap()),
            _ => None,
        })
        .collect();
    let updates: Vec<&MixedOp> = events
        .iter()
        .filter_map(|e| match &e.op {
            MixedOp::Query { .. } => None,
            op => Some(op),
        })
        .collect();
    assert_eq!(groups.len(), 48);
    assert_eq!(updates.len(), 600);
    let k = 4;

    let mut snapshot = Arc::new(tree.freeze());
    let service = Service::start(Arc::clone(&snapshot), ServiceConfig::with_workers(3));

    // Three generations: serve a slice of queries, apply a slice of
    // updates, refreeze + publish, repeat. Every phase is pinned against
    // the sequential reference on the snapshot its generation serves.
    for (phase, (query_chunk, update_chunk)) in
        groups.chunks(16).zip(updates.chunks(200)).enumerate()
    {
        let generation = phase as u64 + 1;
        assert_eq!(service.generation(), generation);
        let want = reference(&snapshot, query_chunk, k);
        // One shared-traversal batch per phase: a batch job loads the
        // snapshot once, so it is served entirely on one generation.
        let responses = service
            .submit(Submission::batch(
                query_chunk.iter().map(|g| QueryRequest::new(g.clone(), k)),
            ))
            .expect("batch submitted")
            .wait_all()
            .expect("batch served");
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(
                r.generation, generation,
                "phase {phase} query {i}: wrong generation tag"
            );
            assert_eq!(
                fingerprint(&r.neighbors),
                want[i],
                "phase {phase} query {i}: diverged from generation reference"
            );
        }

        // Mutate the live tree and publish a refrozen snapshot — identical
        // to a full freeze by construction (the refreeze property suite
        // pins this; assert it once more on real mixed traffic).
        for op in update_chunk {
            match op {
                MixedOp::Insert { id, point } => tree.insert(LeafEntry::new(PointId(*id), *point)),
                MixedOp::Delete { id, point } => {
                    assert!(tree.remove(PointId(*id), *point), "schedule replay desync")
                }
                MixedOp::Query { .. } => unreachable!(),
            }
        }
        let refrozen = tree.refreeze(&snapshot);
        assert_eq!(refrozen, tree.freeze());
        snapshot = Arc::new(refrozen);
        assert_eq!(service.publish(Arc::clone(&snapshot)), generation + 1);
    }

    let stats = service.shutdown();
    assert_eq!(stats.generation, 4); // three publishes on top of gen 1
    assert_eq!(stats.queries_served, 48);
    assert_eq!(stats.latency.count(), 48);
}

#[test]
fn in_flight_queries_complete_across_continuous_publishing() {
    // Churn test: queries flow while snapshots are republished as fast as
    // refreeze allows. Every response must carry a valid generation and
    // match the reference of the snapshot that generation published —
    // regardless of where the swaps land relative to the dequeues.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(7);
    let mut tree = RTree::bulk_load(
        RTreeParams::with_capacity(16),
        (0..4_000).map(|i| {
            LeafEntry::new(
                PointId(i as u64),
                Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0),
            )
        }),
    );
    let k = 3;
    let group = QueryGroup::sum(vec![Point::new(50.0, 50.0), Point::new(52.0, 48.0)]).unwrap();

    // Pre-compute the snapshot chain and each generation's reference.
    let mut snapshots: Vec<Arc<PackedRTree>> = vec![Arc::new(tree.freeze())];
    let mut next_id = 10_000u64;
    for _ in 0..8 {
        for _ in 0..50 {
            tree.insert(LeafEntry::new(
                PointId(next_id),
                Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0),
            ));
            next_id += 1;
        }
        let prev = snapshots.last().unwrap();
        snapshots.push(Arc::new(tree.refreeze(prev)));
    }
    let references: Vec<Vec<(u64, u64)>> = snapshots
        .iter()
        .map(|s| {
            let r = Mbm::best_first().k_gnn(&s.cursor(), &group, k);
            fingerprint(&r.neighbors)
        })
        .collect();

    let service = Service::start(Arc::clone(&snapshots[0]), ServiceConfig::with_workers(2));
    let responses: Vec<QueryResponse> = std::thread::scope(|s| {
        let svc = &service;
        let submitter = s.spawn(move || {
            (0..200)
                .map(|_| {
                    svc.submit(QueryRequest::new(group.clone(), k))
                        .expect("query submitted")
                        .wait()
                        .expect("query served")
                })
                .collect::<Vec<_>>()
        });
        for snap in &snapshots[1..] {
            service.publish(Arc::clone(snap));
            std::thread::yield_now();
        }
        submitter.join().expect("submitter panicked")
    });
    for (i, r) in responses.iter().enumerate() {
        let gen = r.generation;
        assert!(
            (1..=snapshots.len() as u64).contains(&gen),
            "query {i}: generation {gen} out of range"
        );
        assert_eq!(
            fingerprint(&r.neighbors),
            references[gen as usize - 1],
            "query {i}: diverged from the reference of generation {gen}"
        );
    }
    service.shutdown();
}
