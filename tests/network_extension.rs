//! Cross-crate properties of the network-distance extension: the Euclidean
//! machinery must lower-bound the network results, and the two network
//! algorithms must agree with each other and the oracle on arbitrary
//! topologies.

use gnn::core::baseline::linear_scan_entries;
use gnn::network::{network_oracle, NetworkIer, NetworkTa, RoadNetwork, VertexId};
use gnn::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_vertices(g: &RoadNetwork, count: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked: Vec<u32> = (0..g.vertex_count() as u32).collect();
    for i in 0..count.min(picked.len()) {
        let j = rng.gen_range(i..picked.len());
        picked.swap(i, j);
    }
    picked.truncate(count);
    picked.into_iter().map(VertexId).collect()
}

#[test]
fn euclidean_gnn_lower_bounds_network_gnn() {
    // On the same data/query vertices, the Euclidean k-GNN distance is a
    // lower bound of the network k-GNN distance (paths dominate lines).
    for seed in 0..5u64 {
        let g = RoadNetwork::grid(15, 15, 0.25, seed);
        let data = sample_vertices(&g, 60, seed + 100);
        let query = sample_vertices(&g, 4, seed + 200);

        let net = NetworkTa.k_gnn(&g, &data, &query, 1, Aggregate::Sum);
        let tree = RTree::bulk_load(
            RTreeParams::default(),
            data.iter()
                .map(|&v| LeafEntry::new(PointId(u64::from(v.0)), g.position(v))),
        );
        let group = QueryGroup::sum(query.iter().map(|&v| g.position(v)).collect()).unwrap();
        let cursor = TreeCursor::unbuffered(&tree);
        let euclid = Mbm::best_first().k_gnn(&cursor, &group, 1);
        assert!(
            euclid.best().unwrap().dist <= net.neighbors[0].dist + 1e-9,
            "seed {seed}: euclid {} > network {}",
            euclid.best().unwrap().dist,
            net.neighbors[0].dist
        );
    }
}

#[test]
fn network_gnn_on_vertices_degenerates_to_euclidean_on_complete_graphs() {
    // A complete graph with Euclidean weights has network distance ==
    // Euclidean distance, so network GNN == Euclidean GNN over the same
    // vertex set.
    let mut rng = StdRng::seed_from_u64(9);
    let mut g = RoadNetwork::new();
    let vs: Vec<VertexId> = (0..40)
        .map(|_| g.add_vertex(Point::new(rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0)))
        .collect();
    for i in 0..vs.len() {
        for j in (i + 1)..vs.len() {
            g.add_edge(vs[i], vs[j]);
        }
    }
    let data: Vec<VertexId> = vs[..25].to_vec();
    let query: Vec<VertexId> = vs[25..30].to_vec();
    let net = NetworkTa.k_gnn(&g, &data, &query, 3, Aggregate::Sum);

    let group = QueryGroup::sum(query.iter().map(|&v| g.position(v)).collect()).unwrap();
    let entries = data
        .iter()
        .map(|&v| LeafEntry::new(PointId(u64::from(v.0)), g.position(v)));
    let euclid = linear_scan_entries(entries, &group, 3);
    for (n, e) in net.neighbors.iter().zip(euclid.distances()) {
        assert!((n.dist - e).abs() < 1e-9, "{} vs {e}", n.dist);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ta_and_ier_agree_with_oracle_on_random_networks(
        seed in 0u64..10_000,
        n_data in 5usize..40,
        n_query in 1usize..6,
        k in 1usize..4,
    ) {
        let g = RoadNetwork::random_geometric(
            80,
            Rect::from_corners(0.0, 0.0, 10.0, 10.0),
            1.6,
            seed,
        );
        let data = sample_vertices(&g, n_data, seed + 1);
        let query = sample_vertices(&g, n_query, seed + 2);
        let want = network_oracle(&g, &data, &query, k, Aggregate::Sum);
        let ta = NetworkTa.k_gnn(&g, &data, &query, k, Aggregate::Sum);
        let ier = NetworkIer.k_gnn(&g, &data, &query, k, Aggregate::Sum);
        prop_assert_eq!(ta.neighbors.len(), want.len());
        prop_assert_eq!(ier.neighbors.len(), want.len());
        for ((t, i), w) in ta.neighbors.iter().zip(&ier.neighbors).zip(&want) {
            prop_assert!((t.dist - w.dist).abs() < 1e-9 * (1.0 + w.dist));
            prop_assert!((i.dist - w.dist).abs() < 1e-9 * (1.0 + w.dist));
        }
    }
}
