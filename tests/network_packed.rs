//! Bit-identity of the packed (CSR snapshot + reusable scratch) network
//! algorithms against the arena reference, and agreement of both with the
//! Dijkstra oracle: the packed refactor must change *performance*, never
//! results. Compared per query: neighbor ids, distance **bits**, and every
//! expansion counter (`settled_vertices`, `relaxed_edges`,
//! `euclidean_candidates`, `rtree_accesses`).

use gnn::network::{
    network_oracle, NetworkGnnResult, NetworkIer, NetworkScratch, NetworkTa, RoadNetwork, VertexId,
};
use gnn::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_vertices(g: &RoadNetwork, count: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked: Vec<u32> = (0..g.vertex_count() as u32).collect();
    for i in 0..count.min(picked.len()) {
        let j = rng.gen_range(i..picked.len());
        picked.swap(i, j);
    }
    picked.truncate(count);
    picked.into_iter().map(VertexId).collect()
}

/// The Euclidean filter index over the data vertices, built exactly as both
/// the arena IER (per query) and `NetworkSnapshot::new` (once) build it.
fn data_tree(g: &RoadNetwork, data: &[VertexId]) -> PackedRTree {
    RTree::bulk_load(
        RTreeParams::default(),
        data.iter()
            .map(|&v| LeafEntry::new(PointId(u64::from(v.0)), g.position(v))),
    )
    .freeze()
}

/// Asserts the packed result is bit-identical to the arena result.
fn assert_bit_identical(
    label: &str,
    arena: &NetworkGnnResult,
    packed: &[Neighbor],
    packed_stats: &gnn::network::NetworkGnnStats,
) {
    assert_eq!(
        arena.neighbors.len(),
        packed.len(),
        "{label}: result cardinality"
    );
    for (a, p) in arena.neighbors.iter().zip(packed) {
        assert_eq!(u64::from(a.vertex.0), p.id.0, "{label}: neighbor id");
        assert_eq!(
            a.dist.to_bits(),
            p.dist.to_bits(),
            "{label}: distance bits ({} vs {})",
            a.dist,
            p.dist
        );
    }
    assert_eq!(
        arena.stats.settled_vertices, packed_stats.settled_vertices,
        "{label}: settled_vertices"
    );
    assert_eq!(
        arena.stats.relaxed_edges, packed_stats.relaxed_edges,
        "{label}: relaxed_edges"
    );
    assert_eq!(
        arena.stats.euclidean_candidates, packed_stats.euclidean_candidates,
        "{label}: euclidean_candidates"
    );
    assert_eq!(
        arena.stats.rtree_accesses, packed_stats.rtree_accesses,
        "{label}: rtree_accesses"
    );
}

/// Asserts a result's distances agree with the oracle's (same floating-point
/// expressions evaluated in a different order, so tolerance not bits).
fn assert_matches_oracle(label: &str, got: &[Neighbor], want: &[gnn::network::NetworkNeighbor]) {
    assert_eq!(got.len(), want.len(), "{label}: oracle cardinality");
    for (g, w) in got.iter().zip(want) {
        assert!(
            (g.dist - w.dist).abs() < 1e-9 * (1.0 + w.dist),
            "{label}: {} vs oracle {}",
            g.dist,
            w.dist
        );
    }
}

/// One full comparison on one network: TA and IER, arena vs packed vs
/// oracle, across all three aggregates and k ∈ {1, 4}, reusing a single
/// scratch so epoch-stamped reset is exercised too.
fn check_network(g: &RoadNetwork, data: &[VertexId], query: &[VertexId], label: &str) {
    let packed = g.freeze();
    let tree = data_tree(g, data);
    let mut scratch = NetworkScratch::new();
    for aggregate in [Aggregate::Sum, Aggregate::Max, Aggregate::Min] {
        for k in [1usize, 4] {
            let tag = format!("{label} {aggregate:?} k={k}");
            let want = network_oracle(g, data, query, k, aggregate);

            let arena_ta = NetworkTa.k_gnn(g, data, query, k, aggregate);
            let (out, stats) = NetworkTa.k_gnn_in(&packed, data, query, k, aggregate, &mut scratch);
            let (out, stats) = (out.to_vec(), stats);
            assert_bit_identical(&format!("{tag} TA"), &arena_ta, &out, &stats);
            assert_matches_oracle(&format!("{tag} TA"), &out, &want);

            let arena_ier = NetworkIer.k_gnn(g, data, query, k, aggregate);
            let (out, stats) =
                NetworkIer.k_gnn_in(&packed, &tree, query, k, aggregate, &mut scratch);
            let (out, stats) = (out.to_vec(), stats);
            assert_bit_identical(&format!("{tag} IER"), &arena_ier, &out, &stats);
            assert_matches_oracle(&format!("{tag} IER"), &out, &want);
        }
    }
}

#[test]
fn packed_matches_arena_on_perturbed_grids() {
    for seed in 0..4u64 {
        let g = RoadNetwork::grid(12, 12, 0.25, seed);
        let data = sample_vertices(&g, 50, seed + 100);
        let query = sample_vertices(&g, 1 + (seed as usize % 5), seed + 200);
        check_network(&g, &data, &query, &format!("grid seed={seed}"));
    }
}

#[test]
fn packed_snap_matches_linear_scan_oracle() {
    // The frozen vertex R-tree snap must pick the same vertex as the O(V)
    // scan it replaced (both tie-break toward the lowest vertex id).
    for seed in 0..3u64 {
        let g = RoadNetwork::grid(10, 10, 0.3, seed);
        let packed = g.freeze();
        let mut rng = StdRng::seed_from_u64(seed + 900);
        for _ in 0..200 {
            let p = Point::new(rng.gen::<f64>() * 11.0 - 1.0, rng.gen::<f64>() * 11.0 - 1.0);
            assert_eq!(packed.snap(p), g.snap_linear(p), "seed {seed} point {p:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_matches_arena_on_random_geometric_networks(
        seed in 0u64..10_000,
        n_data in 5usize..40,
        n_query in 1usize..6,
    ) {
        let g = RoadNetwork::random_geometric(
            80,
            Rect::from_corners(0.0, 0.0, 10.0, 10.0),
            1.6,
            seed,
        );
        let data = sample_vertices(&g, n_data, seed + 1);
        let query = sample_vertices(&g, n_query, seed + 2);
        check_network(&g, &data, &query, &format!("rg seed={seed}"));
    }
}
