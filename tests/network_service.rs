//! Serving-layer determinism for road-network GNN: the trip workload
//! submitted through `Service::start_network` must produce — per query —
//! the same choice, neighbor ids, bit-identical distances, and the same
//! expansion counters as the sequential packed reference
//! (`Target::Network` + `execute_on` on one scratch), on every worker
//! count and through batch submission.

use gnn::datasets::{trip_workload, TripSpec};
use gnn::network::{NetworkSnapshot, RoadNetwork, VertexId};
use gnn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn build_backend(seed: u64) -> (RoadNetwork, Arc<NetworkSnapshot>) {
    let network = RoadNetwork::grid(16, 16, 0.25, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let data: Vec<VertexId> = (0..network.vertex_count() as u32)
        .filter(|_| rng.gen::<f64>() < 0.12)
        .map(VertexId)
        .collect();
    let snapshot = Arc::new(NetworkSnapshot::new(network.freeze(), data));
    (network, snapshot)
}

/// A mixed trip workload: pinned sources and snapped groups, all three
/// aggregates, explicit NET-TA / NET-IER pins and planner-chosen `Auto`,
/// k cycling 1..=6.
fn mixed_requests(network: &RoadNetwork, count: usize, seed: u64) -> Vec<QueryRequest> {
    let spec = TripSpec {
        group_size: 4,
        max_retries: 8,
    };
    let algos = [Algo::NetworkTa, Algo::NetworkIer, Algo::Auto];
    trip_workload(network, spec, count, seed)
        .into_iter()
        .enumerate()
        .map(|(i, trip)| {
            let group = match i % 3 {
                0 => QueryGroup::sum(trip.points.clone()),
                1 => QueryGroup::with_aggregate(trip.points.clone(), Aggregate::Max),
                _ => QueryGroup::with_aggregate(trip.points.clone(), Aggregate::Min),
            }
            .expect("trip group");
            let mut req = QueryRequest::with_algo(group, 1 + i % 6, algos[i % algos.len()]);
            // Alternate pinned trip sources with snap-at-serve groups: both
            // resolution paths must be deterministic under concurrency.
            if i % 2 == 0 {
                req = req.with_network(NetworkQuery::at_vertices(
                    trip.sources.iter().map(|v| v.0).collect(),
                ));
            }
            req
        })
        .collect()
}

/// Per-query fingerprint: choice, ids, distance bits, Dijkstra counters,
/// Euclidean-filter accesses.
type Fingerprint = (Choice, Vec<(u64, u64)>, u64, u64, u64);

fn fingerprint(choice: Choice, neighbors: &[Neighbor], stats: &QueryStats) -> Fingerprint {
    (
        choice,
        neighbors
            .iter()
            .map(|n| (n.id.0, n.dist.to_bits()))
            .collect(),
        stats.settled_vertices,
        stats.relaxed_edges,
        stats.data_tree.logical,
    )
}

fn sequential_reference(backend: &NetworkSnapshot, requests: &[QueryRequest]) -> Vec<Fingerprint> {
    let planner = Planner::new();
    let target = Target::Network(backend);
    let mut scratch = QueryScratch::new();
    requests
        .iter()
        .map(|r| {
            let (choice, neighbors, stats, _) = r.execute_on(&planner, &target, &mut scratch);
            fingerprint(choice, neighbors, &stats)
        })
        .collect()
}

#[test]
fn trip_workload_is_identical_on_1_2_and_8_workers() {
    let (network, backend) = build_backend(21);
    let requests = mixed_requests(&network, 72, 0xCAFE);
    let reference = sequential_reference(&backend, &requests);
    // The workload must actually exercise both network algorithms.
    assert!(reference.iter().any(|f| f.0 == Choice::NetworkTa));
    assert!(reference.iter().any(|f| f.0 == Choice::NetworkIer));

    for workers in [1usize, 2, 8] {
        let service = Service::start_network(
            Arc::clone(&backend) as Arc<dyn NetworkBackend>,
            ServiceConfig {
                workers,
                queue_depth: 24, // smaller than the workload: exercises backpressure
                ..ServiceConfig::default()
            },
        );
        let handles: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r.clone()).expect("network submit"))
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let r = handle.wait().expect("network query served");
            let got = fingerprint(r.choice, &r.neighbors, &r.stats);
            assert_eq!(
                got, reference[i],
                "query {i} diverged on {workers} workers (algo {:?})",
                requests[i].algo
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, requests.len() as u64);
        assert_eq!(stats.latency.count(), requests.len() as u64);
    }
}

#[test]
fn batched_network_submission_matches_sequential() {
    let (network, backend) = build_backend(33);
    let requests = mixed_requests(&network, 40, 0xF00D);
    let reference = sequential_reference(&backend, &requests);

    let service = Service::start_network(
        Arc::clone(&backend) as Arc<dyn NetworkBackend>,
        ServiceConfig::with_workers(2),
    );
    let handle = service
        .submit(Submission::batch(requests.clone()))
        .expect("network batch submit");
    let responses = handle.wait_all().expect("network batch served");
    assert_eq!(responses.len(), reference.len());
    for (i, r) in responses.iter().enumerate() {
        let got = fingerprint(r.choice, &r.neighbors, &r.stats);
        assert_eq!(got, reference[i], "batched query {i} diverged");
    }
    service.shutdown();
}

#[test]
fn network_queries_carry_stage_traces() {
    let (network, backend) = build_backend(5);
    let requests = mixed_requests(&network, 8, 0xBEE);

    let service = Service::start_network(
        Arc::clone(&backend) as Arc<dyn NetworkBackend>,
        ServiceConfig::with_workers(1),
    );
    for req in requests {
        let r = service
            .submit(req.with_trace())
            .expect("network submit")
            .wait()
            .expect("network query served");
        let trace = r.trace.expect("opted-in trace present");
        assert!(trace.execution > std::time::Duration::ZERO);
    }
    service.shutdown();
}
