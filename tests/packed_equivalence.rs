//! Packed-vs-arena equivalence: every algorithm must return identical
//! results — same ids, same distances — and perform the **same node
//! accesses** on a [`PackedRTree`] snapshot as on the arena [`RTree`] it
//! was frozen from.
//!
//! This is the contract that makes `freeze()` a pure performance lever: the
//! packed engine's batched kernels, sorted leaf runs and strengthened point
//! keys change per-point CPU and priority-queue traffic only, never the
//! search trace. Exact distances are computed by the same
//! (association-fixed) kernel on both paths, so even the float values are
//! bit-identical.

use gnn::core::QueryScratch;
use gnn::prelude::*;
use gnn::rtree::PackedRTree;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![-100.0..100.0f64, 0.0..10_000.0f64,]
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), 1..max)
}

fn tree_of(pts: &[Point]) -> RTree {
    RTree::bulk_load(
        RTreeParams::with_capacity(8),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    )
}

fn assert_same(
    name: &str,
    arena: &GnnResult,
    arena_na: u64,
    packed: &GnnResult,
    packed_na: u64,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        arena.neighbors.len(),
        packed.neighbors.len(),
        "{}: result count",
        name
    );
    for (a, p) in arena.neighbors.iter().zip(&packed.neighbors) {
        prop_assert_eq!(a.id, p.id, "{}: id", name);
        prop_assert_eq!(a.dist, p.dist, "{}: distance", name);
    }
    prop_assert_eq!(arena_na, packed_na, "{}: node accesses", name);
    Ok(())
}

fn aggregates() -> [Aggregate; 3] {
    [Aggregate::Sum, Aggregate::Max, Aggregate::Min]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memory_algorithms_identical_on_packed(
        data in points(500),
        query in points(12),
        k in 1usize..7,
    ) {
        let tree = tree_of(&data);
        let packed: PackedRTree = tree.freeze();
        for agg in aggregates() {
            let group = QueryGroup::with_aggregate(query.clone(), agg).unwrap();
            let algos: Vec<(&str, Box<dyn MemoryGnnAlgorithm>)> = if agg == Aggregate::Sum {
                vec![
                    ("MQM", Box::new(Mqm::new())),
                    ("SPM", Box::new(Spm::best_first())),
                    ("SPM-df", Box::new(Spm::depth_first())),
                    ("MBM", Box::new(Mbm::best_first())),
                    ("MBM-df", Box::new(Mbm::depth_first())),
                ]
            } else {
                vec![
                    ("MQM", Box::new(Mqm::new())),
                    ("MBM", Box::new(Mbm::best_first())),
                    ("MBM-df", Box::new(Mbm::depth_first())),
                ]
            };
            for (name, algo) in algos {
                let ac = TreeCursor::unbuffered(&tree);
                let a = algo.k_gnn(&ac, &group, k);
                let pc = TreeCursor::packed(&packed);
                let p = algo.k_gnn(&pc, &group, k);
                assert_same(
                    name,
                    &a,
                    ac.stats().logical,
                    &p,
                    pc.stats().logical,
                )?;
            }
        }
    }

    #[test]
    fn file_algorithms_identical_on_packed(
        data in points(300),
        query in points(80),
        k in 1usize..5,
    ) {
        let tree = tree_of(&data);
        let packed: PackedRTree = tree.freeze();
        let qf = GroupedQueryFile::build_with(query, 8, 20);
        for agg in aggregates() {
            let algos: Vec<(&str, Box<dyn FileGnnAlgorithm>)> = vec![
                ("F-MQM", Box::new(Fmqm::new())),
                ("F-MBM", Box::new(Fmbm::best_first())),
                ("F-MBM-df", Box::new(Fmbm::depth_first())),
            ];
            for (name, algo) in algos {
                let ac = TreeCursor::unbuffered(&tree);
                let afc = FileCursor::new(qf.file());
                let a = algo.k_gnn(&ac, &qf, &afc, k, agg);
                let pc = TreeCursor::packed(&packed);
                let pfc = FileCursor::new(qf.file());
                let p = algo.k_gnn(&pc, &qf, &pfc, k, agg);
                assert_same(
                    name,
                    &a,
                    ac.stats().logical,
                    &p,
                    pc.stats().logical,
                )?;
                prop_assert_eq!(
                    afc.page_reads(),
                    pfc.page_reads(),
                    "{}: query-file pages", name
                );
            }
        }
    }

    #[test]
    fn lane_boundary_sizes_stay_identical(
        jitter in 0usize..3,
        query in points(9),
        k in 1usize..4,
    ) {
        // Padding-focused sweep: dataset sizes straddling the 8-lane
        // padding quantum of the packed arenas (exact multiples and both
        // neighbors), with capacity-8 pages so leaf runs and branch spans
        // land ragged against the vector width. The first points sit at
        // the arena sentinel coordinate (0, 0) — a legitimate location
        // that must keep behaving like data, not like padding.
        for base in [8usize, 16, 64, 128, 256] {
            let n = base - 1 + jitter; // base-1, base, base+1
            // Low-discrepancy coordinates: unique, well-spread, and —
            // unlike a grid — free of exact node-mindist ties (tie pop
            // order is the one thing freeze() does not preserve).
            let data: Vec<Point> = (0..n)
                .map(|i| {
                    if i == 0 {
                        Point::new(0.0, 0.0)
                    } else {
                        Point::new(
                            (i as f64 * 0.754_877_666_2).fract() * 100.0,
                            (i as f64 * 0.569_840_290_9).fract() * 100.0,
                        )
                    }
                })
                .collect();
            let tree = tree_of(&data);
            let packed: PackedRTree = tree.freeze();
            for agg in aggregates() {
                let group = QueryGroup::with_aggregate(query.clone(), agg).unwrap();
                let ac = TreeCursor::unbuffered(&tree);
                let a = Mbm::best_first().k_gnn(&ac, &group, k);
                let pc = TreeCursor::packed(&packed);
                let p = Mbm::best_first().k_gnn(&pc, &group, k);
                assert_same(
                    "MBM@boundary",
                    &a,
                    ac.stats().logical,
                    &p,
                    pc.stats().logical,
                )?;
            }
        }
    }

    #[test]
    fn scratch_and_convenience_entries_agree(
        data in points(400),
        query in points(10),
        k in 1usize..6,
    ) {
        // The allocating wrapper and the scratch-reusing entry point must
        // be the same computation.
        let tree = tree_of(&data);
        let packed = tree.freeze();
        let group = QueryGroup::sum(query).unwrap();
        let mut scratch = QueryScratch::new();
        for cursor in [TreeCursor::unbuffered(&tree), TreeCursor::packed(&packed)] {
            let fresh = Mbm::best_first().k_gnn(&cursor, &group, k);
            let (neighbors, _) = Mbm::best_first().k_gnn_in(&cursor, &group, k, &mut scratch);
            prop_assert_eq!(&fresh.neighbors[..], neighbors);
        }
    }
}
