//! Scaled-down versions of the paper's experimental claims (§5): on the
//! synthetic PP/TS substitutes the *relative* cost orderings the paper
//! reports must hold. These are shape tests — the full reproduction lives in
//! `cargo run -p gnn-bench --release --bin figures`.

use gnn::datasets::{
    gaussian_clusters, overlap_shifted_rect, query_workload, scale_points_to_rect, ClusterSpec,
    QuerySpec,
};
use gnn::prelude::*;

/// A small PP-like clustered dataset (scaled down for test runtime).
fn mini_pp(n: usize, seed: u64) -> Vec<Point> {
    gaussian_clusters(
        n,
        Rect::from_corners(0.0, 0.0, 1.0, 1.0),
        ClusterSpec {
            clusters: 40,
            sigma: 0.015,
            background: 0.15,
        },
        seed,
    )
}

fn build_tree(points: &[Point]) -> RTree {
    RTree::bulk_load(
        RTreeParams::default(),
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    )
}

/// Average logical node accesses of a memory algorithm over a workload.
///
/// Shape tests use the pre-buffer (logical) counts: the test trees are small
/// enough that a realistic buffer pool would cache most of the hot region
/// and flatten the trends the assertions look for. The full-scale harness
/// (`gnn-bench`) reports both.
fn avg_na(tree: &RTree, workload: &[Vec<Point>], algo: &dyn MemoryGnnAlgorithm, k: usize) -> f64 {
    let mut total = 0u64;
    for q in workload {
        let cursor = TreeCursor::with_buffer(tree, 128);
        let group = QueryGroup::sum(q.clone()).unwrap();
        let r = algo.k_gnn(&cursor, &group, k);
        total += r.stats.data_tree.logical;
    }
    total as f64 / workload.len() as f64
}

#[test]
fn figure_5_1_shape_mqm_degrades_with_n_while_mbm_stays_flat() {
    // Paper §5.1: "MQM is, in general, the worst method and its cost
    // increases fast with the query cardinality ... the cardinality of Q has
    // little effect on the node accesses of SPM and MBM".
    let data = mini_pp(8000, 1);
    let tree = build_tree(&data);
    let ws = tree.root_mbr();

    let mut mqm_series = Vec::new();
    let mut mbm_series = Vec::new();
    for n in [4usize, 16, 64] {
        let wl = query_workload(
            ws,
            QuerySpec {
                n,
                area_fraction: 0.08,
            },
            12,
            42,
        );
        mqm_series.push(avg_na(&tree, &wl, &Mqm::new(), 8));
        mbm_series.push(avg_na(&tree, &wl, &Mbm::best_first(), 8));
    }
    // MQM cost grows substantially from n=4 to n=64.
    assert!(
        mqm_series[2] > mqm_series[0] * 2.0,
        "MQM should degrade with n: {mqm_series:?}"
    );
    // MBM stays within a small factor.
    assert!(
        mbm_series[2] < mbm_series[0] * 3.0 + 10.0,
        "MBM should be insensitive to n: {mbm_series:?}"
    );
    // And MBM beats MQM everywhere.
    for (m, b) in mqm_series.iter().zip(&mbm_series) {
        assert!(b <= m, "MBM ({b}) worse than MQM ({m})");
    }
}

#[test]
fn figure_5_1_shape_mbm_beats_spm_beats_mqm() {
    // The paper's §5.1 ordering at n=64, M=8%, k=8.
    let data = mini_pp(8000, 2);
    let tree = build_tree(&data);
    let wl = query_workload(
        tree.root_mbr(),
        QuerySpec {
            n: 64,
            area_fraction: 0.08,
        },
        15,
        7,
    );
    let mqm = avg_na(&tree, &wl, &Mqm::new(), 8);
    let spm = avg_na(&tree, &wl, &Spm::best_first(), 8);
    let mbm = avg_na(&tree, &wl, &Mbm::best_first(), 8);
    assert!(mbm <= spm, "MBM {mbm} should beat SPM {spm}");
    assert!(spm <= mqm, "SPM {spm} should beat MQM {mqm}");
}

#[test]
fn figure_5_2_shape_cost_grows_with_query_mbr() {
    // Paper §5.1: "the cost of all algorithms increases with the query MBR".
    let data = mini_pp(8000, 3);
    let tree = build_tree(&data);
    let ws = tree.root_mbr();
    for algo in [
        Box::new(Mbm::best_first()) as Box<dyn MemoryGnnAlgorithm>,
        Box::new(Spm::best_first()),
    ] {
        let small = avg_na(
            &tree,
            &query_workload(
                ws,
                QuerySpec {
                    n: 64,
                    area_fraction: 0.02,
                },
                15,
                9,
            ),
            algo.as_ref(),
            8,
        );
        let large = avg_na(
            &tree,
            &query_workload(
                ws,
                QuerySpec {
                    n: 64,
                    area_fraction: 0.32,
                },
                15,
                9,
            ),
            algo.as_ref(),
            8,
        );
        assert!(
            large > small,
            "{}: cost must grow with M ({small} -> {large})",
            algo.name()
        );
    }
}

#[test]
fn figure_5_3_shape_k_has_minor_effect() {
    // Paper §5.1: "The value of k does not influence the cost of any method
    // significantly".
    let data = mini_pp(8000, 4);
    let tree = build_tree(&data);
    let wl = query_workload(
        tree.root_mbr(),
        QuerySpec {
            n: 64,
            area_fraction: 0.08,
        },
        15,
        11,
    );
    let k1 = avg_na(&tree, &wl, &Mbm::best_first(), 1);
    let k32 = avg_na(&tree, &wl, &Mbm::best_first(), 32);
    assert!(
        k32 < k1 * 2.5 + 5.0,
        "k=32 ({k32}) should not cost much more than k=1 ({k1})"
    );
}

#[test]
fn figure_5_4_shape_gcp_heap_explodes_when_workspaces_match() {
    // Paper §4.1/§5.2: GCP thrives when Q's workspace is tiny and centered
    // (high pruning), and its heap explodes as the workspaces approach each
    // other (low pruning).
    let ws = Rect::from_corners(0.0, 0.0, 1.0, 1.0);
    let data = mini_pp(4000, 5);
    let tree = build_tree(&data);
    let query_raw = mini_pp(800, 6);

    // Small centered query workspace: cheap.
    let tiny = scale_points_to_rect(&query_raw, Rect::from_corners(0.48, 0.48, 0.52, 0.52));
    let tiny_tree = build_tree(&tiny);
    let dc = TreeCursor::unbuffered(&tree);
    let qc = TreeCursor::unbuffered(&tiny_tree);
    let small_run = Gcp::unbounded().k_gnn(&dc, &qc, 8);
    assert!(!small_run.stats.aborted);

    // Full-workspace query set: heap pressure must be much larger.
    let big = scale_points_to_rect(&query_raw, ws);
    let big_tree = build_tree(&big);
    let dc2 = TreeCursor::unbuffered(&tree);
    let qc2 = TreeCursor::unbuffered(&big_tree);
    let big_run = Gcp::unbounded().k_gnn(&dc2, &qc2, 8);
    assert!(
        big_run.stats.heap_watermark > small_run.stats.heap_watermark * 5,
        "heap watermark should explode: {} vs {}",
        big_run.stats.heap_watermark,
        small_run.stats.heap_watermark
    );
}

#[test]
fn figure_5_6_shape_disk_costs_grow_with_workspace_overlap() {
    // Paper §5.2: "The cost of all algorithms grows fast with the overlap
    // area".
    let data = mini_pp(6000, 7);
    let tree = build_tree(&data);
    let ws = tree.root_mbr();
    let query_raw = mini_pp(600, 8);

    let mut io_by_overlap = Vec::new();
    for overlap in [0.0, 1.0] {
        let target = overlap_shifted_rect(ws, overlap);
        let qpts = scale_points_to_rect(&query_raw, target);
        let qf = GroupedQueryFile::build_with(qpts, 64, 200);
        let cursor = TreeCursor::with_buffer(&tree, 128);
        let fc = FileCursor::new(qf.file());
        let r = Fmbm::best_first().k_gnn(&cursor, &qf, &fc, 8, Aggregate::Sum);
        io_by_overlap.push(r.stats.total_io());
    }
    assert!(
        io_by_overlap[1] > io_by_overlap[0],
        "full overlap should cost more: {io_by_overlap:?}"
    );
}

#[test]
fn group_counts_match_paper_setup() {
    // §5.2: PP (24 493) -> 3 groups, TS (194 971) -> 20 groups at
    // 10 000-point blocks. Verified on the real cardinalities without
    // building the heavy datasets.
    for (cardinality, expect) in [(24_493usize, 3usize), (194_971, 20)] {
        let groups = cardinality.div_ceil(10_000);
        assert_eq!(groups, expect);
    }
}
