//! Property-based tests over the core invariants:
//!
//! * every algorithm equals the linear-scan oracle on arbitrary inputs,
//! * the paper's lemma and heuristics are genuine lower bounds,
//! * the R*-tree keeps its structural invariants under arbitrary updates,
//! * the Hilbert curve is a bijection with unit steps.

use gnn::core::baseline::linear_scan_entries;
use gnn::core::centroid::{gradient_descent_centroid, weiszfeld_centroid, CentroidOptions};
use gnn::geom::hilbert;
use gnn::prelude::*;
use gnn::rtree::validate::check_invariants;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    // Finite coordinates over a few orders of magnitude, including negatives.
    prop_oneof![-100.0..100.0f64, -1.0..1.0f64, 0.0..10_000.0f64,]
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), 1..max)
}

fn tree_of(pts: &[Point]) -> RTree {
    RTree::bulk_load(
        RTreeParams::with_capacity(8),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_algorithms_equal_oracle(
        data in points(200),
        query in points(12),
        k in 1usize..6,
    ) {
        let tree = tree_of(&data);
        let group = QueryGroup::sum(query).unwrap();
        let want = linear_scan_entries(tree.iter(), &group, k);
        let cursor = TreeCursor::unbuffered(&tree);
        for (name, got) in [
            ("MQM", Mqm::new().k_gnn(&cursor, &group, k)),
            ("SPM", Spm::best_first().k_gnn(&cursor, &group, k)),
            ("MBM", Mbm::best_first().k_gnn(&cursor, &group, k)),
            ("MBM-df", Mbm::depth_first().k_gnn(&cursor, &group, k)),
        ] {
            let g = got.distances();
            let w = want.distances();
            prop_assert_eq!(g.len(), w.len(), "{}", name);
            for (a, b) in g.iter().zip(&w) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{}: {} vs {}", name, a, b);
            }
        }
    }

    #[test]
    fn file_algorithms_equal_oracle(
        data in points(150),
        query in points(60),
        k in 1usize..4,
    ) {
        let tree = tree_of(&data);
        let group = QueryGroup::sum(query.clone()).unwrap();
        let want = linear_scan_entries(tree.iter(), &group, k);
        let qf = GroupedQueryFile::build_with(query, 8, 16);
        let cursor = TreeCursor::unbuffered(&tree);
        let fc = FileCursor::new(qf.file());
        for (name, got) in [
            ("F-MQM", Fmqm::new().k_gnn(&cursor, &qf, &fc, k, Aggregate::Sum)),
            ("F-MBM", Fmbm::best_first().k_gnn(&cursor, &qf, &fc, k, Aggregate::Sum)),
        ] {
            let g = got.distances();
            let w = want.distances();
            prop_assert_eq!(g.len(), w.len(), "{}", name);
            for (a, b) in g.iter().zip(&w) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{}: {} vs {}", name, a, b);
            }
        }
    }

    #[test]
    fn lemma_1_holds_for_any_anchor(
        query in points(10),
        p in point(),
        anchor in point(),
    ) {
        // dist(p,Q) >= n*|p anchor| - dist(anchor,Q) for ANY anchor point.
        let group = QueryGroup::sum(query).unwrap();
        let n = group.len() as f64;
        let lhs = group.dist(p);
        let rhs = n * p.dist(anchor) - group.dist(anchor);
        prop_assert!(lhs >= rhs - 1e-7 * (1.0 + lhs.abs()));
    }

    #[test]
    fn pruning_bounds_are_lower_bounds(
        query in points(10),
        rect in (point(), point()).prop_map(|(a, b)| {
            Rect::from_corners(a.x, a.y, b.x, b.y)
        }),
        inside in (0.0..1.0f64, 0.0..1.0f64),
    ) {
        // For a point inside the rectangle, cheap <= tight <= exact.
        let group = QueryGroup::sum(query).unwrap();
        let p = Point::new(
            rect.lo.x + inside.0 * rect.width(),
            rect.lo.y + inside.1 * rect.height(),
        );
        let exact = group.dist(p);
        let cheap = group.cheap_bound_rect(&rect);
        let tight = group.tight_bound_rect(&rect);
        prop_assert!(cheap <= tight + 1e-9 * (1.0 + tight.abs()));
        prop_assert!(tight <= exact + 1e-7 * (1.0 + exact.abs()));
        // And the point-level filter bound is also a lower bound.
        prop_assert!(group.cheap_bound_point(p) <= exact + 1e-7 * (1.0 + exact.abs()));
    }

    #[test]
    fn rtree_invariants_hold_under_updates(
        initial in points(120),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..60),
        additions in points(60),
    ) {
        let mut tree = RTree::new(RTreeParams::with_capacity(6));
        let mut live: Vec<LeafEntry> = Vec::new();
        for (i, &p) in initial.iter().enumerate() {
            let e = LeafEntry::new(PointId(i as u64), p);
            tree.insert(e);
            live.push(e);
        }
        for idx in removals {
            if live.is_empty() { break; }
            let e = live.swap_remove(idx.index(live.len()));
            prop_assert!(tree.remove(e.id, e.point));
        }
        for (i, &p) in additions.iter().enumerate() {
            let e = LeafEntry::new(PointId(10_000 + i as u64), p);
            tree.insert(e);
            live.push(e);
        }
        check_invariants(&tree);
        prop_assert_eq!(tree.len(), live.len());
    }

    #[test]
    fn hilbert_roundtrip_and_locality(order in 1u32..12, d in 0u64..4096) {
        let n = 1u64 << order;
        let d = d % (n * n);
        let (x, y) = hilbert::d_to_xy(order, d);
        prop_assert_eq!(hilbert::xy_to_d(order, x, y), d);
        if d + 1 < n * n {
            let (x2, y2) = hilbert::d_to_xy(order, d + 1);
            let manhattan = (i64::from(x2) - i64::from(x)).abs()
                + (i64::from(y2) - i64::from(y)).abs();
            prop_assert_eq!(manhattan, 1);
        }
    }

    #[test]
    fn centroid_solvers_never_beat_the_optimum_claim(
        query in points(20),
    ) {
        // Both solvers produce anchors whose objective is no worse than the
        // arithmetic mean's, and close to each other.
        let group = QueryGroup::sum(query.clone()).unwrap();
        let opts = CentroidOptions::default();
        let gd = gradient_descent_centroid(&query, None, opts);
        let wz = weiszfeld_centroid(&query, None, opts);
        let o_gd = group.dist(gd);
        let o_wz = group.dist(wz);
        let scale = o_gd.max(o_wz).max(1e-9);
        prop_assert!((o_gd - o_wz).abs() / scale < 0.05,
            "solvers diverge: gd={} wz={}", o_gd, o_wz);
    }

    #[test]
    fn knn_stream_is_monotone(data in points(150), q in point()) {
        let tree = tree_of(&data);
        let cursor = TreeCursor::unbuffered(&tree);
        let dists: Vec<f64> = gnn::rtree::NearestNeighbors::new(&cursor, q)
            .map(|r| r.dist)
            .collect();
        prop_assert_eq!(dists.len(), data.len());
        for w in dists.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn mbm_stream_is_monotone_and_exact(
        data in points(120),
        query in points(8),
    ) {
        let tree = tree_of(&data);
        let group = QueryGroup::sum(query).unwrap();
        let cursor = TreeCursor::unbuffered(&tree);
        let out: Vec<Neighbor> = MbmStream::new(&cursor, &group).collect();
        prop_assert_eq!(out.len(), data.len());
        for w in out.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        for n in &out {
            prop_assert!((n.dist - group.dist(n.point)).abs() < 1e-9 * (1.0 + n.dist));
        }
    }

    #[test]
    fn closest_pairs_match_brute_force(
        a in points(40),
        b in points(40),
    ) {
        let ta = tree_of(&a);
        let tb = tree_of(&b);
        let ca = TreeCursor::unbuffered(&ta);
        let cb = TreeCursor::unbuffered(&tb);
        let mut cp = gnn::rtree::ClosestPairs::new(&ca, &cb);
        let mut got = Vec::new();
        while let Some(pair) = cp.next() {
            got.push(pair.dist);
        }
        let mut want: Vec<f64> = a
            .iter()
            .flat_map(|&pa| b.iter().map(move |&pb| pa.dist(pb)))
            .collect();
        want.sort_by(f64::total_cmp);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()));
        }
    }
}
