//! Refreeze ≡ full freeze: after any interleaved insert/delete workload,
//! [`RTree::refreeze`] against the previous snapshot must produce a
//! snapshot **identical** to a from-scratch [`RTree::freeze`] — same pages,
//! same dense BFS ids, same SoA arenas and leaf mirrors (pinned by
//! `PackedRTree`'s structural `PartialEq`) — and therefore bit-identical
//! results and node accesses for all six algorithms (MQM, SPM, MBM, F-MQM,
//! F-MBM, GCP). This is the contract that makes refreeze a pure build-cost
//! lever: serving a refrozen snapshot is indistinguishable from serving a
//! full rebuild.

use gnn::core::Gcp;
use gnn::prelude::*;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![-100.0..100.0f64, 0.0..10_000.0f64,]
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), 1..max)
}

/// An update op: `sel < 6` inserts `pt`; otherwise deletes the live entry
/// picked by `victim` (or inserts when nothing is live). The 60/40 mix
/// keeps trees growing while exercising condensation heavily.
type Op = (u64, prop::sample::Index, Point);

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u64..10, any::<prop::sample::Index>(), point()), 1..max)
}

/// Applies `ops`, returning how many were applied as deletions.
fn apply(tree: &mut RTree, live: &mut Vec<LeafEntry>, next_id: &mut u64, ops: &[Op]) -> usize {
    let mut deletes = 0;
    for (sel, victim, pt) in ops {
        if *sel < 6 || live.is_empty() {
            let e = LeafEntry::new(PointId(*next_id), *pt);
            *next_id += 1;
            tree.insert(e);
            live.push(e);
        } else {
            let e = live.swap_remove(victim.index(live.len()));
            assert!(tree.remove(e.id, e.point));
            deletes += 1;
        }
    }
    deletes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The snapshot chain: freeze, mutate, refreeze, mutate, refreeze …
    /// with every link compared structurally against a full freeze of the
    /// same tree state.
    #[test]
    fn refreeze_chain_is_structurally_identical_to_full_freeze(
        base in points(400),
        batches in prop::collection::vec(ops(60), 1..5),
    ) {
        let mut tree = RTree::bulk_load(
            RTreeParams::with_capacity(8),
            base.iter()
                .enumerate()
                .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
        );
        let mut live: Vec<LeafEntry> = tree.iter().collect();
        let mut next_id = base.len() as u64;
        let mut snapshot = tree.freeze();
        prop_assert_eq!(&snapshot, &tree.freeze());
        for batch in &batches {
            apply(&mut tree, &mut live, &mut next_id, batch);
            let incremental = tree.refreeze(&snapshot);
            let full = tree.freeze();
            prop_assert_eq!(&incremental, &full);
            prop_assert_eq!(incremental.len(), live.len());
            prop_assert_eq!(incremental.root_mbr(), tree.root_mbr());
            snapshot = incremental; // chain: next batch reuses this one
        }
    }

    /// All six algorithms agree — results and node accesses — between a
    /// full freeze and a refrozen snapshot of the same mutated tree.
    #[test]
    fn six_algorithms_identical_on_refrozen_snapshot(
        base in points(300),
        updates in ops(120),
        query in points(10),
        k in 1usize..5,
    ) {
        let mut tree = RTree::bulk_load(
            RTreeParams::with_capacity(8),
            base.iter()
                .enumerate()
                .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
        );
        let snapshot = tree.freeze();
        let mut live: Vec<LeafEntry> = tree.iter().collect();
        let mut next_id = base.len() as u64;
        apply(&mut tree, &mut live, &mut next_id, &updates);
        prop_assert!(!tree.is_empty());
        let full = tree.freeze();
        let refrozen = tree.refreeze(&snapshot);
        prop_assert_eq!(&full, &refrozen);

        // Memory algorithms: MQM, SPM, MBM.
        let group = QueryGroup::sum(query.clone()).unwrap();
        let memory: Vec<(&str, Box<dyn MemoryGnnAlgorithm>)> = vec![
            ("MQM", Box::new(Mqm::new())),
            ("SPM", Box::new(Spm::best_first())),
            ("MBM", Box::new(Mbm::best_first())),
        ];
        for (name, algo) in memory {
            let fc = TreeCursor::packed(&full);
            let a = algo.k_gnn(&fc, &group, k);
            let rc = TreeCursor::packed(&refrozen);
            let b = algo.k_gnn(&rc, &group, k);
            prop_assert_eq!(&a.neighbors, &b.neighbors, "{}: neighbors", name);
            prop_assert_eq!(
                fc.stats().logical,
                rc.stats().logical,
                "{}: node accesses",
                name
            );
        }

        // File algorithms: F-MQM, F-MBM.
        let qf = GroupedQueryFile::build_with(query.clone(), 8, 16);
        let file: Vec<(&str, Box<dyn FileGnnAlgorithm>)> = vec![
            ("F-MQM", Box::new(Fmqm::new())),
            ("F-MBM", Box::new(Fmbm::best_first())),
        ];
        for (name, algo) in file {
            let fc = TreeCursor::packed(&full);
            let a = algo.k_gnn(&fc, &qf, &FileCursor::new(qf.file()), k, Aggregate::Sum);
            let rc = TreeCursor::packed(&refrozen);
            let b = algo.k_gnn(&rc, &qf, &FileCursor::new(qf.file()), k, Aggregate::Sum);
            prop_assert_eq!(&a.neighbors, &b.neighbors, "{}: neighbors", name);
            prop_assert_eq!(
                fc.stats().logical,
                rc.stats().logical,
                "{}: node accesses",
                name
            );
        }

        // GCP: the query set gets its own (arena) tree; the data side runs
        // on the two snapshots.
        let qtree = RTree::bulk_load(
            RTreeParams::with_capacity(8),
            query
                .iter()
                .enumerate()
                .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
        );
        let gcp = Gcp::default();
        let fc = TreeCursor::packed(&full);
        let a = gcp.k_gnn(&fc, &TreeCursor::unbuffered(&qtree), k);
        let rc = TreeCursor::packed(&refrozen);
        let b = gcp.k_gnn(&rc, &TreeCursor::unbuffered(&qtree), k);
        prop_assert_eq!(&a.neighbors, &b.neighbors, "GCP: neighbors");
        prop_assert_eq!(fc.stats().logical, rc.stats().logical, "GCP: node accesses");
    }
}
