//! RefreshDriver lifecycle determinism: a sharded service whose snapshot is
//! continuously refreshed by the background driver (apply updates →
//! per-shard refreeze → publish on the dirty-fraction policy) must stay
//! pinnable **per generation** — every response's generation tag maps to a
//! snapshot in the driver's published history, and the response is
//! bit-identical to the sequential cross-shard reference on that snapshot.
//! Plus the shutdown hygiene contract: the driver joins cleanly, and once
//! `Service::initiate_shutdown` has closed the queues, no refresh is ever
//! published — the generation cannot advance after the close.

use gnn::datasets::{mixed_traffic, MixedOp, MixedSpec, QuerySpec};
use gnn::prelude::*;
use gnn::service::RefreshStats;
use std::sync::Arc;

fn fingerprint(neighbors: &[Neighbor]) -> Vec<(u64, u64)> {
    neighbors
        .iter()
        .map(|n| (n.id.0, n.dist.to_bits()))
        .collect()
}

/// Sequential cross-shard reference of one request on one snapshot.
fn reference(snapshot: &ShardedSnapshot, request: &QueryRequest) -> Vec<(u64, u64)> {
    let planner = Planner::new();
    let cursors: Vec<TreeCursor<'_>> = snapshot.shards().iter().map(|s| s.cursor()).collect();
    let mut scratch = QueryScratch::new();
    let (_, neighbors, _, _) =
        request.execute_sharded_in(&planner, snapshot, &cursors, &mut scratch);
    fingerprint(neighbors)
}

fn base_entries(n: usize, seed: u64) -> Vec<LeafEntry> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            LeafEntry::new(
                PointId(i as u64),
                Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0),
            )
        })
        .collect()
}

#[test]
fn continuous_refresh_stays_pinnable_per_generation() {
    let entries = base_entries(6_000, 77);
    let base_points: Vec<Point> = entries.iter().map(|e| e.point).collect();
    let sharded_tree = ShardedTree::build(RTreeParams::with_capacity(16), entries, 4);
    let workspace = gnn::geom::Rect::bounding(base_points.iter().copied()).unwrap();
    let initial = Arc::new(sharded_tree.freeze_all());
    let service = Arc::new(Service::start_sharded(
        Arc::clone(&initial),
        ServiceConfig::with_workers(4),
    ));
    // Aggressive policy: small bursts of updates trigger publishes, so the
    // run spans several generations.
    let driver = RefreshDriver::start(
        sharded_tree,
        Arc::clone(&service),
        gnn::service::RefreshPolicy {
            dirty_fraction: 0.002,
            ..Default::default()
        },
    );

    // Fixed-seed mixed schedule: the update stream and the query stream
    // come from the same deterministic recipe the mixed-traffic experiment
    // uses.
    let spec = MixedSpec {
        query: QuerySpec {
            n: 8,
            area_fraction: 0.05,
        },
        queries: 60,
        query_rate_qps: 10_000.0,
        updates: 900,
        update_rate_ups: 50_000.0,
        insert_fraction: 0.5,
    };
    let events = mixed_traffic(workspace, spec, &base_points, 4040);
    let mut requests: Vec<QueryRequest> = Vec::new();
    let mut pending: Vec<(QueryRequest, gnn::service::ResponseHandle)> = Vec::new();
    let mut applied_since_wait = 0usize;
    let mut sent = 0u64;
    for e in &events {
        match &e.op {
            MixedOp::Query { points } => {
                let request = QueryRequest::new(QueryGroup::sum(points.clone()).unwrap(), 4);
                pending.push((
                    request.clone(),
                    service.submit(request.clone()).expect("query submitted"),
                ));
                requests.push(request);
            }
            MixedOp::Insert { id, point } => {
                assert!(driver.apply(Update::Insert(LeafEntry::new(PointId(*id), *point))));
                sent += 1;
                applied_since_wait += 1;
            }
            MixedOp::Delete { id, point } => {
                assert!(driver.apply(Update::Remove {
                    id: PointId(*id),
                    point: *point,
                }));
                sent += 1;
                applied_since_wait += 1;
            }
        }
        // Every ~300 updates, wait for the driver to fully drain what was
        // sent. The driver publishes within the same loop iteration that
        // applies a burst (its dirty threshold is far below one burst's
        // dirt) and only then advances its visible counters — so once
        // `applied == sent`, the burst's publish has happened and the run
        // deterministically spans several generations, with queries
        // landing on each.
        if applied_since_wait >= 300 {
            applied_since_wait = 0;
            let mut spins = 0u64;
            while driver.stats().applied < sent {
                std::thread::yield_now();
                spins += 1;
                assert!(spins < 100_000_000, "driver never drained");
            }
        }
    }
    let responses: Vec<QueryResponse> = pending
        .into_iter()
        .map(|(_, h)| h.wait().expect("query served"))
        .collect();

    let outcome = driver.join().expect("driver run failed");
    assert_eq!(outcome.stats.applied, 900);
    assert_eq!(outcome.stats.missed_removes, 0, "replay desync");
    assert!(
        outcome.stats.published >= 2,
        "policy never fired: {:?}",
        outcome.stats
    );
    assert_eq!(outcome.stats.skipped_publishes, 0);
    // The driver was the only publisher: its history aligns 1:1 with the
    // service generations, starting at generation 1.
    assert_eq!(outcome.snapshots.len() as u64, service.generation());
    assert!(Arc::ptr_eq(&outcome.snapshots[0], &initial));
    assert!(Arc::ptr_eq(
        outcome.snapshots.last().unwrap(),
        &service.sharded_snapshot()
    ));
    // The final snapshot reflects every accepted update.
    assert_eq!(outcome.snapshots.last().unwrap().len(), outcome.tree.len());

    // Per-generation determinism: every response matches the sequential
    // cross-shard reference of the snapshot its generation tag names.
    for (i, r) in responses.iter().enumerate() {
        let g = r.generation;
        assert!(
            g >= 1 && (g as usize) <= outcome.snapshots.len(),
            "query {i}: generation {g} out of range"
        );
        let snapshot = &outcome.snapshots[g as usize - 1];
        assert_eq!(
            fingerprint(&r.neighbors),
            reference(snapshot, &requests[i]),
            "query {i}: diverged from the reference of generation {g}"
        );
        assert!((r.routing.primary as usize) < 4);
        assert!(r.routing.consulted >= 1 && r.routing.consulted <= 4);
    }

    let stats = Arc::try_unwrap(service)
        .expect("driver released its service handle")
        .shutdown();
    assert_eq!(stats.queries_served, 60, "{stats:?}");
}

#[test]
fn no_publish_after_service_queue_close() {
    // The satellite contract: a refresh racing `initiate_shutdown` is
    // dropped, never published — the generation is frozen at close time —
    // and the driver still joins cleanly with every accepted update
    // applied to its tree.
    let entries = base_entries(2_000, 88);
    let sharded_tree = ShardedTree::build(RTreeParams::with_capacity(16), entries, 2);
    let service = Arc::new(Service::start_sharded(
        Arc::new(sharded_tree.freeze_all()),
        ServiceConfig::with_workers(2),
    ));
    let driver = RefreshDriver::start(
        sharded_tree,
        Arc::clone(&service),
        gnn::service::RefreshPolicy {
            dirty_fraction: 1e-9, // every burst wants to publish
            ..Default::default()
        },
    );

    // Phase 1: updates flow and publish normally.
    for i in 0..500u64 {
        assert!(driver.apply(Update::Insert(LeafEntry::new(
            PointId(100_000 + i),
            Point::new((i % 997) as f64, (i % 991) as f64),
        ))));
    }
    let mut spins = 0u64;
    while driver.stats().applied < 500 {
        std::thread::yield_now();
        spins += 1;
        assert!(spins < 100_000_000, "driver never drained phase 1");
    }
    assert!(driver.stats().published >= 1, "phase 1 never published");

    // Phase 2: close the service, then keep feeding — every refresh the
    // driver now wants (in-loop and the shutdown flush) races a closed
    // queue and must be dropped, never published.
    service.initiate_shutdown();
    let generation_at_close = service.generation();
    for i in 0..500u64 {
        assert!(driver.apply(Update::Insert(LeafEntry::new(
            PointId(200_000 + i),
            Point::new((i % 983) as f64, (i % 977) as f64),
        ))));
    }
    let outcome = driver.join().expect("driver run failed");

    assert_eq!(
        service.generation(),
        generation_at_close,
        "generation advanced after queue close"
    );
    assert_eq!(
        outcome.stats.applied, 1_000,
        "post-close updates still apply"
    );
    assert_eq!(outcome.tree.len(), 2_000 + 1_000);
    let RefreshStats {
        published,
        skipped_publishes,
        ..
    } = outcome.stats;
    assert_eq!(
        published,
        generation_at_close - 1,
        "every published refresh must be a generation bump"
    );
    assert!(
        skipped_publishes >= 1,
        "the post-close flush must be dropped, not published: {:?}",
        outcome.stats
    );
    // History still aligns with generations for what WAS published.
    assert_eq!(outcome.snapshots.len() as u64, generation_at_close);

    let stats = Arc::try_unwrap(service)
        .expect("driver released its service handle")
        .shutdown();
    assert_eq!(stats.generation, generation_at_close);
}

#[test]
fn refreshed_data_becomes_queryable() {
    // End-to-end freshness: an inserted point is served once its refresh
    // publishes — the full mutate → refreeze → publish → query loop.
    let entries = base_entries(1_500, 99);
    let sharded_tree = ShardedTree::build(RTreeParams::with_capacity(16), entries, 3);
    let service = Arc::new(Service::start_sharded(
        Arc::new(sharded_tree.freeze_all()),
        ServiceConfig::with_workers(3),
    ));
    let driver = RefreshDriver::start(
        sharded_tree,
        Arc::clone(&service),
        gnn::service::RefreshPolicy {
            dirty_fraction: 1e-9,
            ..Default::default()
        },
    );
    // A point far outside the data's [0,1000]² workspace: once visible, it
    // is unambiguously the 1-NN of a group sitting on top of it.
    let target = Point::new(5_000.0, 5_000.0);
    assert!(driver.apply(Update::Insert(LeafEntry::new(PointId(424_242), target))));
    let group = QueryGroup::sum(vec![target]).unwrap();
    let mut spins = 0u64;
    loop {
        let r = service
            .submit(QueryRequest::new(group.clone(), 1))
            .expect("query submitted")
            .wait()
            .expect("query served");
        if r.neighbors.first().map(|n| n.id) == Some(PointId(424_242)) {
            assert_eq!(r.neighbors[0].dist.to_bits(), 0f64.to_bits());
            break;
        }
        spins += 1;
        std::thread::yield_now();
        assert!(spins < 10_000_000, "inserted point never became queryable");
    }
    driver.join().expect("driver run failed");
    Arc::try_unwrap(service)
        .expect("driver released its service handle")
        .shutdown();
}
