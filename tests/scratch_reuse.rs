//! Zero-allocation steady state: once a [`QueryScratch`] has served a
//! warm-up pass over a workload, running the same workload again must not
//! grow any internal buffer — [`QueryScratch::capacity_profile`] has to be
//! byte-for-byte stable. Since every per-query allocation in the hot path
//! lives in the scratch (heaps, best lists, bound buffers, leaf runs, sort
//! pools), a stable profile means steady-state queries perform no heap
//! allocations at all.

use gnn::core::{Planner, QueryScratch};
use gnn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64, lo: f64, hi: f64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                lo + rng.gen::<f64>() * (hi - lo),
                lo + rng.gen::<f64>() * (hi - lo),
            )
        })
        .collect()
}

fn tree_of(pts: &[Point]) -> RTree {
    RTree::bulk_load(
        RTreeParams::default(),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    )
}

fn groups(count: usize, n: usize, seed: u64) -> Vec<QueryGroup> {
    (0..count)
        .map(|i| QueryGroup::sum(random_points(n, seed + i as u64, 20.0, 80.0)).unwrap())
        .collect()
}

/// Runs `work` once to warm the scratch, snapshots the capacity profile,
/// then re-runs the same workload asserting the profile never changes.
fn assert_steady_state(
    scratch: &mut QueryScratch,
    mut work: impl FnMut(&mut QueryScratch),
    what: &str,
) {
    // Two warm-up passes: the first sizes the buffers, the second settles
    // amortised growth (hash-set capacities round up on the way).
    work(scratch);
    work(scratch);
    let profile = scratch.capacity_profile();
    for round in 0..3 {
        work(scratch);
        assert_eq!(
            profile,
            scratch.capacity_profile(),
            "{what}: a scratch buffer regrew in steady state (round {round})"
        );
    }
}

#[test]
fn memory_algorithms_are_allocation_free_in_steady_state() {
    let data = random_points(4000, 1, 0.0, 100.0);
    let tree = tree_of(&data);
    let packed = tree.freeze();
    let workload = groups(24, 16, 500);

    for (backend, cursor) in [
        ("arena", TreeCursor::unbuffered(&tree)),
        ("packed", TreeCursor::packed(&packed)),
    ] {
        let algos: Vec<(&str, Box<dyn MemoryGnnAlgorithm>)> = vec![
            ("MQM", Box::new(Mqm::new())),
            ("SPM", Box::new(Spm::best_first())),
            ("MBM", Box::new(Mbm::best_first())),
            ("MBM-df", Box::new(Mbm::depth_first())),
        ];
        for (name, algo) in algos {
            let mut scratch = QueryScratch::new();
            assert_steady_state(
                &mut scratch,
                |s| {
                    for g in &workload {
                        let (neighbors, _) = algo.k_gnn_in(&cursor, g, 8, s);
                        assert_eq!(neighbors.len(), 8);
                    }
                },
                &format!("{name} on {backend}"),
            );
        }
    }
}

#[test]
fn planner_run_many_is_allocation_free_in_steady_state() {
    let data = random_points(3000, 2, 0.0, 100.0);
    let tree = tree_of(&data);
    let packed = tree.freeze();
    let cursor = TreeCursor::packed(&packed);
    let workload = groups(16, 8, 900);
    let planner = Planner::new();
    let mut scratch = QueryScratch::new();
    let mut answered = 0usize;
    assert_steady_state(
        &mut scratch,
        |s| {
            planner.run_many(&cursor, &workload, 4, s, |_, _, neighbors, stats| {
                assert_eq!(neighbors.len(), 4);
                assert!(stats.data_tree.logical > 0);
                answered += 1;
            });
        },
        "Planner::run_many",
    );
    assert_eq!(answered, 16 * 5);
}

#[test]
fn file_algorithms_scratch_capacities_stabilize() {
    // The file algorithms still allocate their per-query `QueryGroup`
    // materialisations (charged to the metered group loads), but all search
    // state — stream heaps, thresholds, candidate masks, leaf matrices —
    // lives in the scratch and must stop growing once warmed up.
    let data = random_points(2000, 3, 0.0, 100.0);
    let tree = tree_of(&data);
    let packed = tree.freeze();
    let cursor = TreeCursor::packed(&packed);
    let qpts = random_points(96, 4, 10.0, 90.0);
    let qf = GroupedQueryFile::build_with(qpts, 16, 24);

    let algos: Vec<(&str, Box<dyn FileGnnAlgorithm>)> = vec![
        ("F-MQM", Box::new(Fmqm::new())),
        ("F-MBM", Box::new(Fmbm::best_first())),
    ];
    for (name, algo) in algos {
        let mut scratch = QueryScratch::new();
        assert_steady_state(
            &mut scratch,
            |s| {
                let fc = FileCursor::new(qf.file());
                let (neighbors, _) = algo.k_gnn_in(&cursor, &qf, &fc, 3, Aggregate::Sum, s);
                assert_eq!(neighbors.len(), 3);
            },
            name,
        );
    }
}

#[test]
fn scratch_shrinks_nothing_when_k_varies() {
    // Alternating k must reuse the same buffers (KBestList keeps its
    // capacity across resets).
    let data = random_points(2000, 5, 0.0, 100.0);
    let tree = tree_of(&data);
    let packed = tree.freeze();
    let cursor = TreeCursor::packed(&packed);
    let workload = groups(8, 8, 700);
    let mbm = Mbm::best_first();
    let mut scratch = QueryScratch::new();
    assert_steady_state(
        &mut scratch,
        |s| {
            for (i, g) in workload.iter().enumerate() {
                let k = 1 + (i % 16);
                let (neighbors, _) = mbm.k_gnn_in(&cursor, g, k, s);
                assert_eq!(neighbors.len(), k);
            }
        },
        "MBM with varying k",
    );
}
