//! Concurrent determinism: the serving layer must be a pure scheduling
//! wrapper. An interleaved MQM/SPM/MBM workload submitted through the
//! service on 1, 2 and 8 workers has to produce — per query — the same
//! neighbor ids, bit-identical distances, and the same node accesses as the
//! sequential reference, and the aggregate node-access totals (the paper's
//! cost metric) must survive concurrency exactly.

use gnn::datasets::query_workload;
use gnn::datasets::QuerySpec;
use gnn::prelude::*;
use std::sync::Arc;

fn build_snapshot(n: usize, seed: u64) -> (RTree, Arc<PackedRTree>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        (0..n).map(|i| {
            LeafEntry::new(
                PointId(i as u64),
                Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0),
            )
        }),
    );
    let packed = Arc::new(tree.freeze());
    (tree, packed)
}

/// An interleaved workload cycling through the three memory algorithms,
/// group sizes, and k values.
fn interleaved_requests(workspace: Rect, count: usize, seed: u64) -> Vec<QueryRequest> {
    let algos = [Algo::Mqm, Algo::Spm, Algo::Mbm, Algo::Auto];
    let spec = QuerySpec {
        n: 8,
        area_fraction: 0.08,
    };
    query_workload(workspace, spec, count, seed)
        .into_iter()
        .enumerate()
        .map(|(i, pts)| {
            let group = QueryGroup::sum(pts).expect("workload query");
            QueryRequest::with_algo(group, 1 + i % 7, algos[i % algos.len()])
        })
        .collect()
}

/// Per-query fingerprint: ids, distance bits, node accesses, choice.
type Fingerprint = (Vec<u64>, Vec<u64>, u64, Choice);

fn fingerprint(neighbors: &[Neighbor], na: u64, choice: Choice) -> Fingerprint {
    (
        neighbors.iter().map(|n| n.id.0).collect(),
        neighbors.iter().map(|n| n.dist.to_bits()).collect(),
        na,
        choice,
    )
}

#[test]
fn interleaved_workload_is_identical_on_1_2_and_8_workers() {
    let (_tree, snapshot) = build_snapshot(20_000, 42);
    let requests = interleaved_requests(snapshot.root_mbr(), 96, 7);

    // Sequential reference: the exact same execution path (one packed
    // cursor, one scratch, one planner), no threads.
    let planner = Planner::new();
    let cursor = snapshot.cursor();
    let mut scratch = QueryScratch::new();
    let mut reference: Vec<Fingerprint> = Vec::with_capacity(requests.len());
    let mut reference_na_total = 0u64;
    for req in &requests {
        let (choice, neighbors, stats) = req.execute_in(&planner, &cursor, &mut scratch);
        reference_na_total += stats.data_tree.logical;
        reference.push(fingerprint(neighbors, stats.data_tree.logical, choice));
    }
    assert!(reference_na_total > 0);

    for workers in [1usize, 2, 8] {
        let service = Service::start(
            Arc::clone(&snapshot),
            ServiceConfig {
                workers,
                queue_depth: 32, // smaller than the batch: exercises backpressure
                ..ServiceConfig::default()
            },
        );
        let handles: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r.clone()).expect("query submitted"))
            .collect();
        let mut na_total = 0u64;
        for (i, handle) in handles.into_iter().enumerate() {
            let r = handle.wait().expect("query served");
            na_total += r.stats.data_tree.logical;
            let got = fingerprint(&r.neighbors, r.stats.data_tree.logical, r.choice);
            assert_eq!(
                got, reference[i],
                "query {i} diverged on {workers} workers (algo {:?})",
                requests[i].algo
            );
        }
        assert_eq!(
            na_total, reference_na_total,
            "aggregate node accesses diverged on {workers} workers"
        );
        let stats = service.shutdown();
        assert_eq!(stats.queries_served, requests.len() as u64);
        assert_eq!(
            stats.node_accesses, reference_na_total,
            "worker-counter NA total diverged on {workers} workers"
        );
        assert_eq!(stats.latency.count(), requests.len() as u64);
    }
}

#[test]
fn service_agrees_with_planner_run_many_collect() {
    // The tentpole's determinism anchor, stated exactly as in the issue:
    // the same workload through the service and through
    // `Planner::run_many_collect` gives identical ids, distances, and
    // total node accesses.
    let (_tree, snapshot) = build_snapshot(10_000, 9);
    let spec = QuerySpec {
        n: 16,
        area_fraction: 0.08,
    };
    let groups: Vec<QueryGroup> = query_workload(snapshot.root_mbr(), spec, 64, 3)
        .into_iter()
        .map(|pts| QueryGroup::sum(pts).unwrap())
        .collect();
    let k = 5;

    let planner = Planner::new();
    let cursor = snapshot.cursor();
    let mut scratch = QueryScratch::new();
    let sequential = planner.run_many_collect(&cursor, &groups, k, &mut scratch);
    let sequential_na: u64 = sequential
        .iter()
        .map(|(_, r)| r.stats.data_tree.logical)
        .sum();

    let service = Service::start(Arc::clone(&snapshot), ServiceConfig::with_workers(8));
    let handles: Vec<_> = groups
        .iter()
        .map(|g| {
            service
                .submit(QueryRequest::new(g.clone(), k))
                .expect("query submitted")
        })
        .collect();
    let mut service_na = 0u64;
    for (handle, (choice, want)) in handles.into_iter().zip(&sequential) {
        let r = handle.wait().unwrap();
        assert_eq!(r.choice, *choice);
        service_na += r.stats.data_tree.logical;
        assert_eq!(
            r.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            want.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        // Bit-identical distances: both paths run the same kernels.
        assert_eq!(
            r.neighbors
                .iter()
                .map(|n| n.dist.to_bits())
                .collect::<Vec<_>>(),
            want.neighbors
                .iter()
                .map(|n| n.dist.to_bits())
                .collect::<Vec<_>>()
        );
    }
    assert_eq!(service_na, sequential_na);
    service.shutdown();
}

#[test]
fn eight_worker_throughput_scales_when_cores_allow() {
    // The acceptance target: 8-worker queries/sec >= 4x the single-thread
    // packed baseline. Thread scaling is physically bounded by the host's
    // cores, so the assertion arms only where it can hold; the recorded
    // BENCH_service.json carries the measured numbers either way.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores < 8 {
        eprintln!("skipping throughput-scaling assertion: only {cores} core(s) available");
        return;
    }
    let (_tree, snapshot) = build_snapshot(50_000, 11);
    let spec = QuerySpec {
        n: 64,
        area_fraction: 0.08,
    };
    let groups: Vec<QueryGroup> = query_workload(snapshot.root_mbr(), spec, 256, 5)
        .into_iter()
        .map(|pts| QueryGroup::sum(pts).unwrap())
        .collect();
    let k = 8;

    // Sequential baseline (warmed).
    let planner = Planner::new();
    let cursor = snapshot.cursor();
    let mut scratch = QueryScratch::new();
    planner.run_many(&cursor, &groups, k, &mut scratch, |_, _, _, _| {});
    let t0 = std::time::Instant::now();
    planner.run_many(&cursor, &groups, k, &mut scratch, |_, _, _, _| {});
    let seq_qps = groups.len() as f64 / t0.elapsed().as_secs_f64();

    // 8-worker service (warmed the same way). Per-request submissions:
    // this measures worker scaling, which a shared-traversal batch would
    // serialize onto one worker.
    let service = Service::start(Arc::clone(&snapshot), ServiceConfig::with_workers(8));
    let submit_all = || -> Vec<_> {
        groups
            .iter()
            .map(|g| {
                service
                    .submit(QueryRequest::new(g.clone(), k))
                    .expect("query submitted")
            })
            .collect()
    };
    for h in submit_all() {
        h.wait().unwrap();
    }
    let t0 = std::time::Instant::now();
    for h in submit_all() {
        h.wait().unwrap();
    }
    let svc_qps = groups.len() as f64 / t0.elapsed().as_secs_f64();
    service.shutdown();

    assert!(
        svc_qps >= 4.0 * seq_qps,
        "8-worker service reached only {svc_qps:.0} q/s vs sequential {seq_qps:.0} q/s on {cores} cores"
    );
}
