//! Sharded-vs-unsharded equivalence: cross-shard k-GNN through a
//! [`ShardedSnapshot`] must return the same neighbors — same ids, same
//! distance bits — as the same algorithm on the unsharded [`PackedRTree`],
//! for every algorithm and shard count, and its node-access accounting must
//! equal exactly what the consulted shard cursors metered.
//!
//! This is the contract that makes spatial sharding a pure serving-scale
//! lever: the Hilbert partition, the refined routing directory and the
//! best-first merge change *where* the work happens, never the answer.
//! Exact aggregate distances are a pure function of (point, group), so the
//! only legitimate divergence is which of several points **tying at the
//! k-th distance** is retained — single-tree algorithms themselves resolve
//! such ties by traversal order (`GnnResult::distances` documents this).
//! The suite detects a boundary tie from the reference's `k+1` distance
//! multiset and compares distances-only in that (measure-zero) case, ids +
//! distance bits otherwise.

use gnn::core::sharded::sharded_k_gnn_in;
use gnn::core::QueryScratch;
use gnn::prelude::*;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![-100.0..100.0f64, 0.0..10_000.0f64,]
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), 1..max)
}

fn tree_of(pts: &[Point]) -> RTree {
    RTree::bulk_load(
        RTreeParams::with_capacity(8),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    )
}

/// The six memory algorithm variants (planner-auto resolves to MBM and is
/// covered by the service suites; SPM is SUM-only).
fn algorithms(aggregate: Aggregate) -> Vec<(&'static str, Box<dyn MemoryGnnAlgorithm>)> {
    if aggregate == Aggregate::Sum {
        vec![
            ("MQM", Box::new(Mqm::new())),
            ("SPM", Box::new(Spm::best_first())),
            ("SPM-df", Box::new(Spm::depth_first())),
            ("MBM", Box::new(Mbm::best_first())),
            ("MBM-df", Box::new(Mbm::depth_first())),
        ]
    } else {
        vec![
            ("MQM", Box::new(Mqm::new())),
            ("MBM", Box::new(Mbm::best_first())),
            ("MBM-df", Box::new(Mbm::depth_first())),
        ]
    }
}

fn fingerprint(neighbors: &[Neighbor]) -> Vec<(u64, u64)> {
    neighbors
        .iter()
        .map(|n| (n.id.0, n.dist.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_merge_identical_on_all_algorithms_and_shard_counts(
        data in points(400),
        query in points(10),
        k in 1usize..6,
    ) {
        let tree = tree_of(&data);
        let packed = tree.freeze();
        for agg in [Aggregate::Sum, Aggregate::Max, Aggregate::Min] {
            let group = QueryGroup::with_aggregate(query.clone(), agg).unwrap();
            // Boundary-tie probe: the k+1 smallest aggregate distances are
            // algorithm-independent; a tie between positions k-1 and k
            // means the k-th slot has interchangeable occupants.
            let probe = Mbm::best_first().k_gnn(&packed.cursor(), &group, k + 1);
            let boundary_tie = probe.neighbors.len() > k
                && probe.neighbors[k - 1].dist.to_bits() == probe.neighbors[k].dist.to_bits();
            for (name, algo) in algorithms(agg) {
                let reference = {
                    let cursor = packed.cursor();
                    let r = algo.k_gnn(&cursor, &group, k);
                    (fingerprint(&r.neighbors), r)
                };
                for shards in [1usize, 2, 4, 7] {
                    let sharded = packed.partition(shards);
                    prop_assert_eq!(sharded.shard_count(), shards);
                    let cursors: Vec<TreeCursor<'_>> =
                        sharded.shards().iter().map(|s| s.cursor()).collect();
                    let mut scratch = QueryScratch::new();
                    let (got, stats, routing) = sharded_k_gnn_in(
                        algo.as_ref(),
                        &sharded,
                        &cursors,
                        &group,
                        k,
                        &mut scratch,
                    );
                    // Distance bits always match, bit for bit.
                    prop_assert_eq!(
                        got.iter().map(|n| n.dist.to_bits()).collect::<Vec<_>>(),
                        reference
                            .1
                            .neighbors
                            .iter()
                            .map(|n| n.dist.to_bits())
                            .collect::<Vec<_>>(),
                        "{} @ {} shards: distance bits",
                        name,
                        shards
                    );
                    // Ids too, except in the boundary-tie case.
                    if !boundary_tie {
                        prop_assert_eq!(
                            fingerprint(got),
                            reference.0.clone(),
                            "{} @ {} shards: ids + distance bits",
                            name,
                            shards
                        );
                    }
                    // Aggregate NA accounting: the reported stats equal
                    // exactly what the shard cursors metered, and only
                    // consulted shards were touched.
                    let metered: u64 = cursors.iter().map(|c| c.stats().logical).sum();
                    prop_assert_eq!(
                        stats.data_tree.logical,
                        metered,
                        "{} @ {} shards: NA accounting",
                        name,
                        shards
                    );
                    prop_assert!(
                        routing.consulted >= 1 && routing.consulted as usize <= shards,
                        "{} @ {} shards: consulted {}",
                        name,
                        shards,
                        routing.consulted
                    );
                    prop_assert!((routing.primary as usize) < shards);
                }
            }
        }
    }

    #[test]
    fn single_shard_partition_preserves_na_of_its_own_tree(
        data in points(300),
        query in points(8),
        k in 1usize..5,
    ) {
        // `ShardedSnapshot::single` wraps a snapshot without rebuilding:
        // the sharded path must equal the plain path *including* node
        // accesses (this is what keeps the unsharded service bit-identical
        // to its sequential reference through the sharded engine).
        let tree = tree_of(&data);
        let packed = std::sync::Arc::new(tree.freeze());
        let single = ShardedSnapshot::single(std::sync::Arc::clone(&packed));
        let group = QueryGroup::sum(query).unwrap();
        let algo = Mbm::best_first();
        let want = algo.k_gnn(&packed.cursor(), &group, k);
        let cursors = vec![single.shard(0).cursor()];
        let mut scratch = QueryScratch::new();
        let (got, stats, routing) =
            sharded_k_gnn_in(&algo, &single, &cursors, &group, k, &mut scratch);
        prop_assert_eq!(fingerprint(got), fingerprint(&want.neighbors));
        prop_assert_eq!(stats.data_tree.logical, want.stats.data_tree.logical);
        prop_assert_eq!(routing, ShardRouting::default());
    }

    #[test]
    fn partition_constructors_agree(
        data in points(300),
        shards in 1usize..8,
    ) {
        // `RTree::freeze_sharded` and `PackedRTree::partition` are the same
        // canonical partition: structurally identical shard snapshots.
        let tree = tree_of(&data);
        let packed = tree.freeze();
        let a = tree.freeze_sharded(shards);
        let b = packed.partition(shards);
        prop_assert_eq!(a.shard_count(), b.shard_count());
        for s in 0..shards {
            prop_assert_eq!(a.shard(s).as_ref(), b.shard(s).as_ref(), "shard {}", s);
        }
        prop_assert_eq!(a.directory(), b.directory());
        let total: usize = a.shards().iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, data.len());
    }
}
