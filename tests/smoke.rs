//! Tier-1 smoke suite: one fixed-seed scenario, answered by every main-memory
//! algorithm, checked against the linear-scan oracle. Runs in well under a
//! second, so CI catches algorithm regressions immediately without waiting
//! for the full property-based suites.

use gnn::core::baseline::linear_scan_entries;
use gnn::datasets::uniform_points;
use gnn::prelude::*;

const SEED: u64 = 0x5EED_0001;

fn workspace() -> Rect {
    Rect::from_corners(0.0, 0.0, 1.0, 1.0)
}

#[test]
fn mqm_spm_mbm_agree_on_1k_uniform_points() {
    let data = uniform_points(1000, workspace(), SEED);
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        data.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    let cursor = TreeCursor::unbuffered(&tree);

    // A few group shapes: clustered, spread, and degenerate (single point).
    let groups = [
        vec![
            Point::new(0.5, 0.5),
            Point::new(0.52, 0.48),
            Point::new(0.47, 0.53),
        ],
        vec![
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.2),
            Point::new(0.4, 0.95),
            Point::new(0.8, 0.8),
        ],
        vec![Point::new(0.25, 0.75)],
    ];

    for (gi, pts) in groups.into_iter().enumerate() {
        let group = QueryGroup::sum(pts).unwrap();
        for k in [1, 4, 10] {
            let oracle = linear_scan_entries(tree.iter(), &group, k);
            let want = oracle.distances();
            for (name, got) in [
                ("MQM", Mqm::new().k_gnn(&cursor, &group, k)),
                ("SPM", Spm::best_first().k_gnn(&cursor, &group, k)),
                ("MBM", Mbm::best_first().k_gnn(&cursor, &group, k)),
                ("MBM-df", Mbm::depth_first().k_gnn(&cursor, &group, k)),
            ] {
                let g = got.distances();
                assert_eq!(g.len(), want.len(), "{name} group {gi} k={k}: wrong count");
                for (a, b) in g.iter().zip(&want) {
                    assert!(
                        (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                        "{name} group {gi} k={k}: {a} vs oracle {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    // Same seed, two independent builds: identical ids and distances. Guards
    // against hidden iteration-order or uninitialised-state nondeterminism.
    let run = || {
        let data = uniform_points(1000, workspace(), SEED);
        let tree = RTree::bulk_load(
            RTreeParams::default(),
            data.iter()
                .enumerate()
                .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
        );
        let cursor = TreeCursor::unbuffered(&tree);
        let group = QueryGroup::sum(vec![Point::new(0.3, 0.6), Point::new(0.7, 0.4)]).unwrap();
        let found = Mbm::best_first().k_gnn(&cursor, &group, 5);
        found
            .neighbors
            .iter()
            .map(|n| (n.id, n.dist))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
