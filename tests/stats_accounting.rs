//! Accounting sanity: the simulated-I/O counters every experiment relies on
//! must be consistent — logical >= post-buffer I/O, deltas well-formed,
//! query-file charges matching group loads.

use gnn::datasets::uniform_points;
use gnn::prelude::*;

fn setup(n: usize, seed: u64) -> (Vec<Point>, RTree) {
    let ws = Rect::from_corners(0.0, 0.0, 100.0, 100.0);
    let pts = uniform_points(n, ws, seed);
    let tree = RTree::bulk_load(
        RTreeParams::with_capacity(16),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    (pts, tree)
}

#[test]
fn logical_accesses_dominate_io() {
    let (_, tree) = setup(3000, 1);
    let group = QueryGroup::sum(uniform_points(
        32,
        Rect::from_corners(40.0, 40.0, 60.0, 60.0),
        2,
    ))
    .unwrap();
    for cap in [1usize, 8, 64, 1024] {
        let cursor = TreeCursor::with_buffer(&tree, cap);
        let r = Mqm::new().k_gnn(&cursor, &group, 4);
        assert!(
            r.stats.data_tree.io <= r.stats.data_tree.logical,
            "cap={cap}: io {} > logical {}",
            r.stats.data_tree.io,
            r.stats.data_tree.logical
        );
    }
}

#[test]
fn larger_buffers_never_increase_io() {
    let (_, tree) = setup(3000, 3);
    let group = QueryGroup::sum(uniform_points(
        64,
        Rect::from_corners(20.0, 20.0, 50.0, 50.0),
        4,
    ))
    .unwrap();
    let mut last_io = u64::MAX;
    for cap in [1usize, 16, 128, 4096] {
        let cursor = TreeCursor::with_buffer(&tree, cap);
        let r = Mqm::new().k_gnn(&cursor, &group, 8);
        assert!(
            r.stats.data_tree.io <= last_io,
            "cap={cap} increased IO: {} > {last_io}",
            r.stats.data_tree.io
        );
        last_io = r.stats.data_tree.io;
    }
}

#[test]
fn mqm_gains_most_from_the_buffer() {
    // The paper notes MQM specifically "benefits from the existence of an
    // LRU buffer" because its per-query-point streams revisit shared paths.
    let (_, tree) = setup(5000, 5);
    let group = QueryGroup::sum(uniform_points(
        64,
        Rect::from_corners(30.0, 30.0, 55.0, 55.0),
        6,
    ))
    .unwrap();

    let unbuffered = TreeCursor::unbuffered(&tree);
    let r_cold = Mqm::new().k_gnn(&unbuffered, &group, 8);
    let buffered = TreeCursor::with_buffer(&tree, 256);
    let r_warm = Mqm::new().k_gnn(&buffered, &group, 8);
    assert!(
        r_warm.stats.data_tree.io * 2 <= r_cold.stats.data_tree.io,
        "buffer should at least halve MQM I/O: {} vs {}",
        r_warm.stats.data_tree.io,
        r_cold.stats.data_tree.io
    );
}

#[test]
fn take_stats_resets_counters_but_not_the_buffer() {
    let (_, tree) = setup(500, 7);
    let cursor = TreeCursor::with_buffer(&tree, 64);
    cursor.read(tree.root());
    let first = cursor.take_stats();
    assert_eq!(first.logical, 1);
    assert_eq!(first.io, 1);
    // Same page again: counter restarted, but the page is still cached.
    cursor.read(tree.root());
    let second = cursor.take_stats();
    assert_eq!(second.logical, 1);
    assert_eq!(second.io, 0, "buffer survived take_stats");
    // reset() clears the buffer too.
    cursor.reset();
    cursor.read(tree.root());
    assert_eq!(cursor.stats().io, 1);
}

#[test]
fn query_file_charges_match_group_loads() {
    let qpts = uniform_points(320, Rect::from_corners(0.0, 0.0, 10.0, 10.0), 8);
    let qf = GroupedQueryFile::build_with(qpts, 32, 64); // 5 groups, 2 pages each
    let fc = FileCursor::new(qf.file());
    let mut expected = 0u64;
    for gi in 0..qf.group_count() {
        let pts = qf.load_group(&fc, gi);
        expected += qf.groups()[gi].pages.len() as u64;
        assert_eq!(pts.len(), qf.groups()[gi].count);
    }
    assert_eq!(fc.page_reads(), expected);
    assert_eq!(expected, qf.file().page_count() as u64);
}

#[test]
fn disk_algorithm_stats_are_complete() {
    let (data, tree) = setup(2000, 9);
    let _ = data;
    let qpts = uniform_points(200, Rect::from_corners(30.0, 30.0, 70.0, 70.0), 10);
    let qf = GroupedQueryFile::build_with(qpts.clone(), 16, 50);
    let cursor = TreeCursor::with_buffer(&tree, 128);
    let fc = FileCursor::new(qf.file());
    let r = Fmqm::new().k_gnn(&cursor, &qf, &fc, 4, Aggregate::Sum);
    assert!(r.stats.data_tree.logical > 0, "tree accesses recorded");
    assert!(r.stats.query_file_pages > 0, "query pages recorded");
    assert!(r.stats.dist_computations > 0, "distance work recorded");
    assert!(r.stats.total_io() >= r.stats.data_tree.io + r.stats.query_file_pages);
    assert!(r.stats.elapsed.as_nanos() > 0);

    let r2 = Fmbm::best_first().k_gnn(&cursor, &qf, &fc, 4, Aggregate::Sum);
    assert!(r2.stats.query_file_pages > 0);

    // GCP reports query-tree accesses instead of file pages.
    let qtree = RTree::bulk_load(
        RTreeParams::with_capacity(16),
        qpts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    let dc = TreeCursor::unbuffered(&tree);
    let qc = TreeCursor::unbuffered(&qtree);
    let r3 = Gcp::new().k_gnn(&dc, &qc, 4);
    assert!(r3.stats.query_tree.logical > 0);
    assert_eq!(r3.stats.query_file_pages, 0);
    assert!(r3.stats.heap_watermark > 0);
}

#[test]
fn stats_deltas_are_isolated_per_query() {
    // Two consecutive queries through one cursor must each report only their
    // own accesses.
    let (_, tree) = setup(2000, 11);
    let cursor = TreeCursor::with_buffer(&tree, 128);
    let g1 = QueryGroup::sum(uniform_points(
        8,
        Rect::from_corners(10.0, 10.0, 20.0, 20.0),
        12,
    ))
    .unwrap();
    let g2 = QueryGroup::sum(uniform_points(
        8,
        Rect::from_corners(80.0, 80.0, 90.0, 90.0),
        13,
    ))
    .unwrap();
    let r1 = Mbm::best_first().k_gnn(&cursor, &g1, 2);
    let r2 = Mbm::best_first().k_gnn(&cursor, &g2, 2);
    let total = cursor.stats();
    assert_eq!(
        r1.stats.data_tree.logical + r2.stats.data_tree.logical,
        total.logical,
        "per-query deltas must sum to cursor total"
    );
}
