//! Telemetry contracts: observability must be a pure read-side — traces,
//! stage histograms, and the flight recorder never change results, node
//! accesses, or reply accounting.
//!
//! * The flight recorder's merged timeline reconstructs the **exact**
//!   served/panicked/shed event sequence of a seeded [`FaultPlan`] run,
//!   time-ordered, with zero drops when the rings are large enough.
//! * `stats()` observed right after a batch handle resolves already shows
//!   the batch ledger — the worker flushes the ledger before releasing the
//!   batch's last reply (the PR 6 eventual-consistency window is closed).
//! * [`QueryRequest::with_trace`] returns a consistent per-query trace and
//!   changes nothing else; an untraced request carries `None`.
//! * Stage histogram counts reconcile exactly with the serving ledger, and
//!   the trace flag adds no scratch growth on the execution hot path.

use gnn::core::QueryScratch;
use gnn::datasets::{query_workload, QuerySpec};
use gnn::prelude::*;
use gnn::service::QueryError;
use std::sync::Arc;
use std::time::Duration;

fn base_points(n: usize, seed: u64) -> Vec<Point> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0))
        .collect()
}

fn snapshot_of(n: usize, seed: u64) -> Arc<ShardedSnapshot> {
    let pts = base_points(n, seed);
    let tree = RTree::bulk_load(
        RTreeParams::default(),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| LeafEntry::new(PointId(i as u64), p)),
    );
    Arc::new(ShardedSnapshot::single(Arc::new(tree.freeze())))
}

fn workload(snapshot: &ShardedSnapshot, count: usize, seed: u64) -> Vec<QueryRequest> {
    let spec = QuerySpec {
        n: 8,
        area_fraction: 0.06,
    };
    query_workload(snapshot.shard(0).root_mbr(), spec, count, seed)
        .into_iter()
        .map(|pts| QueryRequest::new(QueryGroup::sum(pts).unwrap(), 4))
        .collect()
}

/// The flight-recorder postmortem contract: one worker under a seeded
/// panic plan serves queries one at a time, and the merged timeline
/// reconstructs the exact per-query event sequence the observed outcomes
/// imply — `Enqueued, Dequeued, ExecStart, ExecEnd` for a served query,
/// `…, ExecStart, Panicked, Respawned` for a faulted one, and
/// `…, Dequeued, Shed` for the final expired request.
#[test]
fn postmortem_reconstructs_the_fault_sequence() {
    gnn::service::silence_injected_panics();
    let snapshot = snapshot_of(6_000, 7);
    let requests = workload(&snapshot, 40, 11);
    let service = Service::start_sharded(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 1,
            fault_plan: FaultPlan::none().seeded_panics(0.3, 0xFEED),
            flight_recorder: 1024,
            ..ServiceConfig::default()
        },
    );

    use FlightEventKind::{Dequeued, Enqueued, ExecEnd, ExecStart, Panicked, Respawned, Shed};
    let mut expected: Vec<FlightEventKind> = Vec::new();
    let mut panicked = 0u64;
    // One at a time: with a single worker the ring is a strict transcript.
    for r in &requests {
        let outcome = service.submit(r.clone()).expect("submit").wait();
        expected.extend([Enqueued, Dequeued, ExecStart]);
        match outcome {
            Ok(_) => expected.push(ExecEnd),
            Err(SubmitError::Query(QueryError::WorkerPanicked)) => {
                panicked += 1;
                expected.extend([Panicked, Respawned]);
            }
            Err(e) => panic!("unexpected outcome: {e:?}"),
        }
    }
    assert!(panicked >= 3, "seeded plan never fired ({panicked} panics)");
    // A zero deadline is expired by the time the worker dequeues it: a
    // guaranteed shed tail for the transcript.
    let shed = service
        .submit(requests[0].clone().with_deadline(Duration::ZERO))
        .expect("submit")
        .wait();
    assert!(matches!(
        shed,
        Err(SubmitError::Query(QueryError::DeadlineExceeded))
    ));
    expected.extend([Enqueued, Dequeued, Shed]);

    let stats = service.shutdown();
    assert_eq!(stats.faults.panics, panicked);
    assert_eq!(stats.faults.respawns, panicked);
    assert_eq!(stats.faults.shed, 1);
    assert_eq!(stats.queries_served, requests.len() as u64 - panicked);

    assert_eq!(stats.flight.dropped, 0, "ring was sized for the run");
    let got: Vec<FlightEventKind> = stats
        .flight
        .events
        .iter()
        .filter(|e| e.source == 0)
        .map(|e| e.kind)
        .collect();
    assert_eq!(got, expected, "timeline is not the observed fault sequence");
    // Merged view is time-ordered even with the control ring mixed in.
    for pair in stats.flight.events.windows(2) {
        assert!(pair[0].ts_nanos <= pair[1].ts_nanos);
    }
    // The renderer shows the tail of exactly these events.
    let rendered = stats.flight.render();
    assert!(rendered.contains("worker-0"));
    assert!(rendered.contains("shed"));
}

/// The batch ledger is flushed before the batch's last reply is released:
/// `stats()` taken immediately after `wait_all` returns already counts the
/// sub-batch and its queries — no warm-up dance, no retry loop.
#[test]
fn batch_ledger_is_visible_once_wait_all_returns() {
    let snapshot = snapshot_of(5_000, 13);
    let requests = workload(&snapshot, 8, 17);
    let service = Service::start_sharded(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    for round in 1..=10u64 {
        let responses = service
            .submit(Submission::batch(requests.clone()))
            .expect("submit batch")
            .wait_all()
            .expect("batch completes");
        assert_eq!(responses.len(), 8);
        let stats = service.stats();
        assert_eq!(
            stats.batches, round,
            "ledger lagged the replies on round {round}"
        );
        assert_eq!(stats.batch_queries, round * 8);
        assert_eq!(stats.queries_served, round * 8);
    }
    service.shutdown();
}

/// Trace opt-in: a traced request carries a consistent [`QueryTrace`], an
/// untraced one carries `None`, and the answers are bit-identical either
/// way — for single submissions and through the shared-traversal batch
/// path alike.
#[test]
fn traces_are_opt_in_consistent_and_result_neutral() {
    let snapshot = snapshot_of(5_000, 23);
    let requests = workload(&snapshot, 12, 29);
    let service = Service::start_sharded(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );

    let plain: Vec<QueryResponse> = requests
        .iter()
        .map(|r| service.submit(r.clone()).unwrap().wait().unwrap())
        .collect();
    let traced: Vec<QueryResponse> = requests
        .iter()
        .map(|r| {
            service
                .submit(r.clone().with_trace())
                .unwrap()
                .wait()
                .unwrap()
        })
        .collect();
    let batched = service
        .submit(Submission::batch(
            requests.iter().map(|r| r.clone().with_trace()),
        ))
        .unwrap()
        .wait_all()
        .unwrap();

    // `QueryStats::elapsed` is wall-clock (nondeterministic by design);
    // every counted field must be bit-identical across the three runs.
    let counters = |s: &QueryStats| {
        let mut s = *s;
        s.elapsed = Duration::ZERO;
        s
    };
    for (i, (p, t)) in plain.iter().zip(&traced).enumerate() {
        assert!(p.trace.is_none(), "untraced response {i} carried a trace");
        let trace = t
            .trace
            .unwrap_or_else(|| panic!("response {i} lost its trace"));
        assert_eq!(trace.node_accesses, t.stats.data_tree.logical);
        assert_eq!(trace.pages, t.stats.data_tree.io);
        assert_eq!(trace.dist_computations, t.stats.dist_computations);
        // Result-neutral: everything but the trace is bit-identical.
        assert_eq!(p.neighbors, t.neighbors, "query {i}");
        assert_eq!(counters(&p.stats), counters(&t.stats), "query {i}");
        let b = &batched[i];
        let btrace = b.trace.expect("batched response lost its trace");
        assert_eq!(btrace.node_accesses, b.stats.data_tree.logical);
        assert_eq!(p.neighbors, b.neighbors, "batched query {i}");
    }
    service.shutdown();
}

/// Stage histogram reconciliation: queue-wait, execution, and reply all
/// count exactly the served queries; shed-wait counts exactly the shed
/// requests (their queue time feeds shed-wait, not queue-wait).
#[test]
fn stage_counts_reconcile_with_the_ledger() {
    let snapshot = snapshot_of(4_000, 31);
    let requests = workload(&snapshot, 6, 37);
    let service = Service::start_sharded(
        Arc::clone(&snapshot),
        ServiceConfig {
            workers: 1,
            fault_plan: FaultPlan::none().with_query_latency(Duration::from_millis(10)),
            ..ServiceConfig::default()
        },
    );
    // A slow head + tight deadlines: everything queued behind the first
    // dequeue expires and is shed.
    let handles: Vec<_> = requests
        .iter()
        .map(|r| {
            service
                .submit(r.clone().with_deadline(Duration::from_millis(1)))
                .expect("submit")
        })
        .collect();
    let mut served = 0u64;
    let mut shed = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => served += 1,
            Err(SubmitError::Query(QueryError::DeadlineExceeded)) => shed += 1,
            Err(e) => panic!("unexpected outcome: {e:?}"),
        }
    }
    assert!(shed >= 1, "nothing was shed");

    let stats = service.shutdown();
    assert_eq!(stats.queries_served, served);
    assert_eq!(stats.faults.shed, shed);
    assert_eq!(stats.stages.queue_wait.count(), served);
    assert_eq!(stats.stages.execution.count(), served);
    assert_eq!(stats.stages.reply.count(), served);
    assert_eq!(stats.stages.shed_wait.count(), shed);
    // The stage decomposition nests inside the end-to-end histogram:
    // identical sample counts.
    assert_eq!(stats.latency.count(), served);
}

/// Scratch-reuse-style pin for the trace flag: requesting a trace must not
/// change the execution hot path — same scratch capacity profile, same
/// results, whether or not the flag is set. (The trace itself is a `Copy`
/// struct the worker fills inline; the flag only gates that copy.)
#[test]
fn trace_flag_adds_no_scratch_growth() {
    let snapshot = snapshot_of(4_000, 41);
    let requests = workload(&snapshot, 10, 43);
    let planner = Planner::new();
    let cursors: Vec<TreeCursor<'_>> = snapshot.shards().iter().map(|s| s.cursor()).collect();
    let mut scratch = QueryScratch::new();

    // Warm on untraced requests, twice (amortised growth settles).
    for _ in 0..2 {
        for r in &requests {
            r.execute_sharded_in(&planner, &snapshot, &cursors, &mut scratch);
        }
    }
    let profile = scratch.capacity_profile();
    let reference: Vec<Vec<(u64, u64)>> = requests
        .iter()
        .map(|r| {
            let (_, neighbors, _, _) =
                r.execute_sharded_in(&planner, &snapshot, &cursors, &mut scratch);
            neighbors
                .iter()
                .map(|n| (n.id.0, n.dist.to_bits()))
                .collect()
        })
        .collect();

    for (i, r) in requests.iter().enumerate() {
        let traced = r.clone().with_trace();
        assert!(traced.trace);
        let (_, neighbors, _, _) =
            traced.execute_sharded_in(&planner, &snapshot, &cursors, &mut scratch);
        let got: Vec<(u64, u64)> = neighbors
            .iter()
            .map(|n| (n.id.0, n.dist.to_bits()))
            .collect();
        assert_eq!(got, reference[i], "trace flag changed results");
        assert_eq!(
            profile,
            scratch.capacity_profile(),
            "trace flag grew a scratch buffer (query {i})"
        );
    }
}
