//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate mirrors the
//! subset of criterion 0.5's API that the `gnn-bench` benches use —
//! [`Criterion::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and the builder knobs
//! ([`Criterion::sample_size`], [`Criterion::measurement_time`]).
//!
//! Measurement is intentionally simple: each benchmark is warmed up once,
//! then timed over `sample_size` samples whose per-sample iteration count is
//! auto-calibrated so a sample takes roughly `measurement_time / sample_size`.
//! Mean/min/max per-iteration times are printed in a criterion-like one-line
//! format. There is no statistical analysis, HTML report, or baseline
//! comparison — swapping the real crate back in is a one-line `Cargo.toml`
//! change and no bench source needs to move.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stand-in runs one setup per
/// routine call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier shown for parameterised benchmarks: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark target.
pub struct Bencher {
    samples: usize,
    sample_budget: Duration,
    /// Per-iteration observations, one per sample.
    observations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize, sample_budget: Duration) -> Self {
        Bencher {
            samples,
            sample_budget,
            observations: Vec::with_capacity(samples),
        }
    }

    /// Calibrates how many iterations fill one sample budget.
    fn calibrate<O, R: FnMut() -> O>(&self, routine: &mut R) -> u64 {
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_budget / 2 || iters >= 1 << 20 {
                let per_iter = elapsed.max(Duration::from_nanos(1)) / iters as u32;
                let budget = self.sample_budget.max(Duration::from_micros(100));
                let fit = (budget.as_nanos() / per_iter.as_nanos().max(1)) as u64;
                return fit.clamp(1, 1 << 24);
            }
            iters = iters.saturating_mul(4);
        }
    }

    /// Times `routine` repeatedly; the routine's return value is black-boxed
    /// so its computation cannot be optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.calibrate(&mut routine);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.observations.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.observations.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.observations.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.observations.iter().sum();
        let mean = total / self.observations.len() as u32;
        let min = self.observations.iter().min().unwrap();
        let max = self.observations.iter().max().unwrap();
        println!("{id:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
    }
}

/// Top-level harness: holds the measurement knobs.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    fn sample_budget(&self) -> Duration {
        self.measurement_time / self.sample_size as u32
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.sample_budget());
        f(&mut b);
        b.report(id);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.sample_budget());
        f(&mut b, input);
        b.report(&id.id);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        // The group gets its own copy of the knobs so group-scoped
        // sample_size/measurement_time never leak into benchmarks registered
        // after finish() — matching real criterion's scoping.
        let settings = self.clone();
        BenchmarkGroup {
            _criterion: self,
            settings,
            name: group_name.into(),
        }
    }
}

/// A named family of related benchmarks (`group/bench_id` reporting).
/// Setting knobs on the group affects only the group's own benchmarks.
pub struct BenchmarkGroup<'a> {
    /// Held to mirror real criterion's exclusive borrow of the harness.
    _criterion: &'a mut Criterion,
    settings: Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings = self.settings.clone().sample_size(n);
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings = self.settings.clone().measurement_time(dur);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.settings.bench_function(&full, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = BenchmarkId {
            id: format!("{}/{}", self.name, id.id),
        };
        self.settings.bench_with_input(full, input, f);
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group; mirrors criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point (`harness = false` targets need a `main`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(20));
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 16]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn group_settings_do_not_leak_past_finish() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("grp");
        g.sample_size(7);
        let mut group_setups = 0u32;
        g.bench_function("inner", |b| {
            b.iter_batched(|| group_setups += 1, |()| (), BatchSize::SmallInput)
        });
        g.finish();
        // iter_batched runs setup exactly once per sample, so the counts
        // observe which sample_size each scope used.
        assert_eq!(group_setups, 7);
        let mut after_setups = 0u32;
        c.bench_function("after", |b| {
            b.iter_batched(|| after_setups += 1, |()| (), BatchSize::SmallInput)
        });
        assert_eq!(after_setups, 3);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("f", 8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
