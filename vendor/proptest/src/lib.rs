//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of proptest's surface that the workspace's test suites use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range, tuple, mapped ([`Strategy::prop_map`]), [`prop_oneof!`], and
//!   [`collection::vec`] strategies,
//! * [`any`] over [`sample::Index`].
//!
//! Semantics: each property runs for [`ProptestConfig::cases`] cases with
//! inputs drawn from a PRNG seeded deterministically from the test's module
//! path and name, so failures reproduce exactly across runs and machines.
//! There is **no shrinking** — a failing case reports its case number and
//! message but not a minimised input. That trade-off keeps the stand-in tiny;
//! swapping the real crate back in is a one-line `Cargo.toml` change.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Deterministic SplitMix64 stream seeding each test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test identity and case index so every run of every
    /// machine explores the same inputs. Uses FNV-1a rather than std's
    /// `DefaultHasher`, whose algorithm may change between Rust releases —
    /// the seed must outlive toolchain bumps for failures to stay
    /// reproducible.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes().chain(case.to_le_bytes()) {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// Test-case failure carried out of a property body by `prop_assert!`.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is honoured by the stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values, e.g. `(a, b).prop_map(|(x, y)| ..)`.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Rounding can land on the excluded endpoint when ULP(start) exceeds
        // the span; step back to preserve the half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        // 24 fresh mantissa bits, not a rounded f64: rounding could yield
        // exactly 1.0 and step outside the half-open range.
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice between boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Canonical strategy for an [`Arbitrary`] type: `any::<sample::Index>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

pub struct Any<T> {
    marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// `vec(element, len_range)`: a vector with length drawn from `len_range`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A position drawn uniformly from an arbitrary-length collection, scaled
    /// to a concrete length at use time via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        unit: f64,
    }

    impl Index {
        /// Maps the sampled position onto `0..len`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            ((self.unit * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                unit: rng.unit_f64(),
            }
        }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($strategy)),+])
    };
}

/// Declares property tests. Each parameter is drawn from its strategy for
/// `cases` deterministic rounds; `prop_assert!` failures abort the case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __test = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(__test, __case);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = __outcome {
                        panic!(
                            "{} failed at deterministic case {}/{}: {}",
                            __test, __case, __config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_case() {
        let a = (0.0..1.0f64).generate(&mut crate::TestRng::for_case("t", 3));
        let b = (0.0..1.0f64).generate(&mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn seeding_is_stable_across_toolchains() {
        // Golden value: the seed derivation must never depend on anything
        // the toolchain may change (e.g. std's DefaultHasher), or failing
        // case numbers stop being reproducible after a Rust upgrade.
        assert_eq!(
            crate::TestRng::for_case("tests::example", 5).next_u64(),
            crate::TestRng::for_case("tests::example", 5).next_u64(),
        );
        // FNV-1a("x" ++ 0u32le), computed independently of the impl.
        assert_eq!(
            crate::TestRng::for_case("x", 0).state,
            0xAAFE_0124_8E8B_2EF7
        );
    }

    #[test]
    fn f32_range_respects_half_open_bound() {
        // 24-bit mantissa sampling cannot round up to the excluded endpoint.
        for case in 0..2000 {
            let mut rng = crate::TestRng::for_case("f32", case);
            let x = (0.0f32..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn index_stays_in_bounds() {
        for case in 0..1000 {
            let mut rng = crate::TestRng::for_case("idx", case);
            let idx = crate::sample::Index::arbitrary(&mut rng);
            for len in [1usize, 2, 7, 1000] {
                assert!(idx.index(len) < len);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            x in -5.0..5.0f64,
            n in 1usize..10,
            pair in (0u32..4, 0u64..100).prop_map(|(a, b)| a as u64 + b),
            v in prop::collection::vec(0.0..1.0f64, 0..8),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(pair < 104);
            prop_assert!(v.len() < 8);
            prop_assert!(idx.index(n) < n);
        }

        #[test]
        fn oneof_picks_only_listed_arms(c in prop_oneof![0i32..3, 10i32..13,]) {
            prop_assert!((0..3).contains(&c) || (10..13).contains(&c), "got {}", c);
        }
    }
}
