//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the *subset* of rand 0.8's API that it actually uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`], and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically fine for tests, workloads, and
//! benchmarks (the only users here), deterministic for a given seed, and
//! dependency-free. It is **not** the CSPRNG real `rand` ships, so this crate
//! must never guard anything security-sensitive. Swapping the real crate back
//! in is a one-line `Cargo.toml` change; no call sites need to move.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seeding interface: the subset of `rand::SeedableRng` used here.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Output types [`Rng::gen_range`] can produce. Mirrors rand's
/// `SampleUniform` so integer-literal ranges infer their type from the call
/// site (`let n: usize = rng.gen_range(2..7)` samples a `Range<usize>`).
pub trait SampleUniform: Sized {
    /// Uniform sample from the half-open interval `[lo, hi)`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping is overkill for test
                // workloads; modulo bias over a 64-bit stream is negligible
                // for the tiny spans used in this workspace.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + f64::sample(rng) * (hi - lo);
        // The affine map can round up onto the excluded endpoint when the
        // bounds' magnitude dwarfs the span (ULP(lo) > hi - lo); keep the
        // half-open contract by stepping back to the largest value below hi.
        if v >= hi {
            hi.next_down()
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + f32::sample(rng) * (hi - lo);
        if v >= hi {
            hi.next_down()
        } else {
            v
        }
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end)
    }
}

/// The subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` over its natural domain ([0, 1) for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64 stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_stays_below_hi_even_at_large_magnitudes() {
        // ULP(1e16) = 2.0, so the affine map rounds onto hi for about half
        // of all draws unless clamped back into the half-open interval.
        let mut rng = StdRng::seed_from_u64(4);
        let (lo, hi) = (1e16, 1e16 + 2.0);
        for _ in 0..1000 {
            let v = rng.gen_range(lo..hi);
            assert!((lo..hi).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
